"""A simulated device that injects faults from a :class:`FaultPlan`.

:class:`FaultyDisk` subclasses :class:`~repro.sim.disk.SimDisk`, so it
conforms to the whole SimDisk surface (read/write, stats, tracing,
capacity, the corruption-query methods) and can be dropped anywhere a
SimDisk is expected — :class:`~repro.storage.stasis.Stasis` builds them
when given a fault plan.

Fault application order within one access:

1. ``latency`` rules — extra virtual service time is charged.
2. ``crash`` rules — :class:`~repro.errors.CrashPoint` with zero bytes
   persisted (the crash-point harness's boundary crash).
3. ``transient`` rules — the access time is charged as wasted device
   time, then :class:`~repro.errors.TransientIOError` is raised.
4. ``torn`` rules (writes only) — a prefix of the bytes is written and
   charged, then :class:`~repro.errors.CrashPoint` is raised with
   ``persisted_bytes`` set; the consumer's checksums find the tear at
   replay.
5. The access itself.
6. ``corrupt`` rules — the accessed range is silently marked corrupt;
   checksummed readers discover it later.

A clean, complete write heals any corruption marks it fully overwrites,
as a real rewrite of a bad sector would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CrashPoint, TransientIOError
from repro.faults.plan import FaultPlan, FaultRule
from repro.sim.clock import VirtualClock
from repro.sim.disk import DiskModel, SimDisk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runtime import EngineRuntime


class FaultyDisk(SimDisk):
    """A :class:`SimDisk` whose accesses consult a :class:`FaultPlan`."""

    def __init__(
        self,
        model: DiskModel,
        clock: VirtualClock,
        name: str | None = None,
        runtime: "EngineRuntime | None" = None,
        capacity_bytes: int | None = None,
        plan: FaultPlan | None = None,
    ) -> None:
        super().__init__(
            model, clock, name=name, runtime=runtime, capacity_bytes=capacity_bytes
        )
        self.plan = plan if plan is not None else FaultPlan()
        self._corrupt: list[tuple[int, int]] = []  # disjoint [start, end) ranges
        if runtime is not None:
            metrics = runtime.metrics
            self._ctr_transient = metrics.counter("faults.transient_errors")
            self._ctr_torn = metrics.counter("faults.torn_writes")
            self._ctr_crashes = metrics.counter("faults.crash_points")
            self._ctr_corrupt = metrics.counter("faults.corruptions")
            self._ctr_spikes = metrics.counter("faults.latency_spikes")
            self._ctr_spike_seconds = metrics.counter("faults.latency_seconds")

    # -- corruption bookkeeping ---------------------------------------

    def corrupted(self, offset: int, nbytes: int) -> bool:
        end = offset + nbytes
        return any(start < end and offset < stop for start, stop in self._corrupt)

    def mark_corrupt(self, offset: int, nbytes: int) -> None:
        if nbytes > 0:
            self._corrupt.append((offset, offset + nbytes))

    def clear_corruption(self, offset: int, nbytes: int) -> None:
        """Subtract ``[offset, offset + nbytes)`` from the corrupt set."""
        end = offset + nbytes
        healed: list[tuple[int, int]] = []
        for start, stop in self._corrupt:
            if stop <= offset or end <= start:
                healed.append((start, stop))
                continue
            if start < offset:
                healed.append((start, offset))
            if end < stop:
                healed.append((end, stop))
        self._corrupt = healed

    @property
    def corrupt_ranges(self) -> list[tuple[int, int]]:
        """Current corrupt byte ranges (inspection helper)."""
        return sorted(self._corrupt)

    # -- fault-injecting access ---------------------------------------

    def _access(
        self,
        offset: int,
        nbytes: int,
        access_seconds: float,
        bandwidth: float,
        is_write: bool,
    ) -> float:
        if nbytes <= 0:
            # Zero-length accesses touch no device; defer validation to base.
            return super()._access(
                offset, nbytes, access_seconds, bandwidth, is_write
            )
        op = "write" if is_write else "read"
        fired = self.plan.note_access(self.name, op)
        extra = 0.0
        crash: FaultRule | None = None
        transient: FaultRule | None = None
        torn: FaultRule | None = None
        corrupt: FaultRule | None = None
        for rule in fired:
            if rule.kind == "latency":
                extra += rule.extra_seconds
            elif rule.kind == "crash":
                crash = crash or rule
            elif rule.kind == "transient":
                transient = transient or rule
            elif rule.kind == "torn" and is_write:
                torn = torn or rule
            elif rule.kind == "corrupt":
                corrupt = corrupt or rule
        if extra > 0.0:
            self._charge_wasted(extra)
            self._note_fault("latency", op, offset, nbytes, extra=extra)
        if crash is not None:
            self._note_fault("crash", op, offset, nbytes)
            raise CrashPoint(
                persisted_bytes=0, access_index=self.plan.access_count
            )
        if transient is not None:
            # A failed access still spins the device: charge the seek time
            # as wasted busy time before failing.
            self._charge_wasted(access_seconds)
            self._note_fault("transient", op, offset, nbytes)
            raise TransientIOError(
                f"injected transient {op} error on {self.name!r} "
                f"(offset={offset}, nbytes={nbytes})"
            )
        if torn is not None:
            persisted = int(nbytes * torn.torn_fraction)
            persisted = max(0, min(persisted, nbytes - 1))
            if persisted:
                super()._access(
                    offset, persisted, access_seconds, bandwidth, is_write
                )
            self._note_fault("torn", op, offset, nbytes, persisted=persisted)
            raise CrashPoint(
                persisted_bytes=persisted, access_index=self.plan.access_count
            )
        service = super()._access(
            offset, nbytes, access_seconds, bandwidth, is_write
        )
        if is_write:
            # A complete, clean write rewrites the whole range: heal it.
            self.clear_corruption(offset, nbytes)
        if corrupt is not None:
            self.mark_corrupt(offset, nbytes)
            self._note_fault("corrupt", op, offset, nbytes)
        return service

    def _note_fault(
        self, kind: str, op: str, offset: int, nbytes: int, **data: object
    ) -> None:
        if self.runtime is None:
            return
        if kind == "latency":
            self._ctr_spikes.inc()
            self._ctr_spike_seconds.inc(float(data.get("extra", 0.0)))
        elif kind == "crash":
            self._ctr_crashes.inc()
        elif kind == "transient":
            self._ctr_transient.inc()
        elif kind == "torn":
            self._ctr_torn.inc()
        elif kind == "corrupt":
            self._ctr_corrupt.inc()
        self.runtime.trace.emit(
            "io_fault",
            disk=self.name,
            fault=kind,
            op=op,
            offset=offset,
            nbytes=nbytes,
            **data,
        )

    def __repr__(self) -> str:
        return (
            f"FaultyDisk(name={self.name!r}, model={self.model.name!r}, "
            f"plan={self.plan!r})"
        )
