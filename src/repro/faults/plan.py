"""Deterministic fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is the single source of truth for every injected
fault in one storage substrate.  Both of a :class:`~repro.storage.stasis.
Stasis`'s devices consult the same plan, so the plan's access counter is
a global ordering over all device I/O — exactly the boundary stream the
crash-point enumeration harness (`repro.faults.crashpoints`) walks.

Fault kinds (see ``docs/fault-injection.md`` for the taxonomy):

* ``transient`` — the access fails with a retryable
  :class:`~repro.errors.TransientIOError`; access time is charged as
  wasted device time.
* ``torn`` — a write persists only a prefix of its bytes, then the
  process dies (:class:`~repro.errors.CrashPoint` with
  ``persisted_bytes`` set).  Log checksums detect the straddling record
  at replay.
* ``crash`` — the process dies at the access boundary, before any
  transfer.  This is the crash-point harness's primitive.
* ``corrupt`` — the accessed byte range is silently corrupted; consumers
  notice only when a checksum verification fails
  (:class:`~repro.errors.CorruptionError`).
* ``latency`` — the access completes but costs ``extra_seconds`` more
  virtual time (a stuttering device, Luo & Carey's degraded-I/O case).

Rules fire deterministically: positional triggers (``at_access``,
``every``) depend only on the shared access counter, and probabilistic
triggers draw from the plan's seeded RNG, so a given (plan, workload)
pair always injects the identical fault sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class FaultRule:
    """One fault trigger.

    A rule fires on an access when every filter matches (device substring,
    op kind) and at least one trigger is hot: ``at_access`` equals the
    plan's (armed) access counter, the counter is a multiple of ``every``,
    or a seeded coin flip lands under ``probability``.  ``count`` bounds
    the total fires (``None`` = unlimited).
    """

    kind: str
    device: str | None = None
    """Substring match against the device name (``None`` = any device)."""
    op: str | None = None
    """``"read"``, ``"write"``, or ``None`` for both."""
    at_access: int | None = None
    """Fire exactly at the Nth counted access (1-based)."""
    every: int | None = None
    """Fire at every Nth counted access."""
    probability: float = 0.0
    """Per-access fire probability, drawn from the plan's seeded RNG."""
    count: int | None = None
    """Maximum number of fires (``None`` = unlimited)."""
    extra_seconds: float = 0.0
    """Added virtual service time (``latency`` rules)."""
    torn_fraction: float = 0.5
    """Fraction of a torn write's bytes that reach the device."""
    fired: int = field(default=0, compare=False)
    """How many times this rule has fired (runtime state)."""

    _KINDS = ("transient", "torn", "crash", "corrupt", "latency")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.op not in (None, "read", "write"):
            raise ValueError(f"op must be 'read', 'write' or None, got {self.op!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError(
                f"torn_fraction must be in [0, 1), got {self.torn_fraction}"
            )
        if self.every is not None and self.every <= 0:
            raise ValueError(f"every must be positive, got {self.every}")
        if self.at_access is not None and self.at_access <= 0:
            raise ValueError(f"at_access must be >= 1, got {self.at_access}")

    def matches(self, device: str, op: str) -> bool:
        if self.device is not None and self.device not in device:
            return False
        return self.op is None or self.op == op

    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    One plan is shared by every device of a substrate; ``note_access``
    is called once per device access and returns the rules that fire.
    The plan can be *disarmed* (rules inert, counter paused) so harnesses
    can build an engine and run recovery without triggering faults meant
    for the workload itself.
    """

    def __init__(
        self,
        rules: list[FaultRule] | tuple[FaultRule, ...] = (),
        seed: int = 0,
        armed: bool = True,
    ) -> None:
        self.rules: list[FaultRule] = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self.armed = armed
        self.access_count = 0
        self.fired_by_kind: dict[str, int] = {}

    # -- construction helpers -----------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        """Append a rule; returns ``self`` for chaining."""
        self.rules.append(rule)
        return self

    @classmethod
    def crash_at(cls, access: int, seed: int = 0, armed: bool = False) -> "FaultPlan":
        """A plan that kills the process at the Nth armed access.

        Built disarmed by default so the harness can construct the engine
        first and :meth:`arm` the plan when the workload starts.
        """
        return cls(
            [FaultRule(kind="crash", at_access=access, count=1)],
            seed=seed,
            armed=armed,
        )

    @classmethod
    def transient(
        cls,
        probability: float = 0.0,
        every: int | None = None,
        device: str | None = None,
        op: str | None = None,
        count: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """A plan injecting retryable I/O errors."""
        return cls(
            [
                FaultRule(
                    kind="transient",
                    probability=probability,
                    every=every,
                    device=device,
                    op=op,
                    count=count,
                )
            ],
            seed=seed,
        )

    @classmethod
    def torn_write(
        cls,
        at_access: int | None = None,
        every: int | None = None,
        device: str | None = None,
        torn_fraction: float = 0.5,
        seed: int = 0,
    ) -> "FaultPlan":
        """A plan tearing one write (prefix persists, then crash)."""
        return cls(
            [
                FaultRule(
                    kind="torn",
                    op="write",
                    at_access=at_access,
                    every=every,
                    device=device,
                    torn_fraction=torn_fraction,
                    count=1,
                )
            ],
            seed=seed,
        )

    @classmethod
    def corrupt(
        cls,
        at_access: int | None = None,
        every: int | None = None,
        probability: float = 0.0,
        device: str | None = None,
        op: str | None = None,
        count: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """A plan silently corrupting accessed byte ranges."""
        return cls(
            [
                FaultRule(
                    kind="corrupt",
                    at_access=at_access,
                    every=every,
                    probability=probability,
                    device=device,
                    op=op,
                    count=count,
                )
            ],
            seed=seed,
        )

    @classmethod
    def latency(
        cls,
        extra_seconds: float,
        probability: float = 0.0,
        every: int | None = None,
        device: str | None = None,
        count: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """A plan injecting per-access latency spikes."""
        return cls(
            [
                FaultRule(
                    kind="latency",
                    extra_seconds=extra_seconds,
                    probability=probability,
                    every=every,
                    device=device,
                    count=count,
                )
            ],
            seed=seed,
        )

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Start counting accesses and firing rules."""
        self.armed = True

    def disarm(self) -> None:
        """Stop counting and firing (e.g. while recovery runs)."""
        self.armed = False

    # -- evaluation ----------------------------------------------------

    def note_access(self, device: str, op: str) -> list[FaultRule]:
        """Count one device access and return the rules that fire on it."""
        if not self.armed:
            return []
        self.access_count += 1
        fired: list[FaultRule] = []
        for rule in self.rules:
            if rule.exhausted() or not rule.matches(device, op):
                continue
            hot = (
                (rule.at_access is not None and rule.at_access == self.access_count)
                or (rule.every is not None and self.access_count % rule.every == 0)
                or (rule.probability > 0.0 and self._rng.random() < rule.probability)
            )
            if hot:
                rule.fired += 1
                self.fired_by_kind[rule.kind] = (
                    self.fired_by_kind.get(rule.kind, 0) + 1
                )
                fired.append(rule)
        return fired

    def __repr__(self) -> str:
        return (
            f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"armed={self.armed}, accesses={self.access_count})"
        )
