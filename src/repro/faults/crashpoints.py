"""ALICE-style crash-point enumeration for the bLSM engines.

The harness answers the question §4.4.2's recovery design must answer:
*is every acknowledged write recoverable no matter where the process
dies?*  It runs a deterministic scripted workload against an engine
whose devices share an armed :class:`~repro.faults.plan.FaultPlan`,
crashing at every Nth device-access boundary (reads and writes across
both the data and log device, so merge I/O, buffer evictions, WAL forces
and logical-log forces are all crash candidates).  After each simulated
crash it drops volatile state, recovers via the engine's ``recover``
classmethod, and verifies the recovered store against a shadow model:

* every acknowledged write (``SYNC`` durability) must read back exactly;
* the single in-flight operation may surface as either its old or its
  new value — both outcomes are durable-by-contract.

This package sits *above* the engine layer, so the engine registry is
imported lazily inside functions — ``repro.faults`` itself stays
importable from the storage layer below.  Which trees can be enumerated
and how they are built/recovered lives in :mod:`repro.engines`
(``CRASH_ENGINE_NAMES`` / ``build_crash_tree`` / ``recover_crash_tree``),
the same registry the CLI draws from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CrashPoint
from repro.faults.plan import FaultPlan


@dataclass
class CrashOutcome:
    """What happened at one enumerated crash point."""

    access_index: int
    crashed: bool
    recovered: bool
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CrashTestReport:
    """Aggregate result of one crash-point enumeration run."""

    engine: str
    ops: int
    every: int
    seed: int
    total_accesses: int
    points_tested: int
    crashes_triggered: int
    recoveries_verified: int
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def scripted_workload(
    ops: int, seed: int = 0, keyspace: int | None = None
) -> list[tuple[str, bytes, bytes | None]]:
    """A deterministic op script: mostly puts, some deletes, reused keys."""
    rng = random.Random(seed)
    if keyspace is None:
        keyspace = max(ops // 2, 16)
    script: list[tuple[str, bytes, bytes | None]] = []
    for index in range(ops):
        key = f"key-{rng.randrange(keyspace):06d}".encode()
        if rng.random() < 0.15:
            script.append(("delete", key, None))
        else:
            script.append(("put", key, f"value-{index:06d}".encode()))
    return script


def _registry() -> Any:
    # Lazy: the registry imports the whole engine layer above us.
    from repro import engines

    return engines


def _run_script(
    tree: Any,
    script: list[tuple[str, bytes, bytes | None]],
    model: dict[bytes, bytes | None],
) -> None:
    """Apply the whole script, maintaining the acked-write model."""
    for op, key, value in script:
        if op == "put":
            tree.put(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model[key] = None


def _verify(
    recovered: Any,
    model: dict[bytes, bytes | None],
    in_flight: tuple[str, bytes, bytes | None] | None,
    outcome: CrashOutcome,
) -> None:
    in_flight_key = in_flight[1] if in_flight is not None else None
    for key, expected in sorted(model.items()):
        actual = recovered.get(key)
        if key == in_flight_key:
            op, _, value = in_flight  # type: ignore[misc]
            new = value if op == "put" else None
            if actual != expected and actual != new:
                outcome.failures.append(
                    f"key {key!r}: got {actual!r}, expected acked {expected!r} "
                    f"or in-flight {new!r}"
                )
        elif actual != expected:
            outcome.failures.append(
                f"key {key!r}: got {actual!r}, expected acked {expected!r}"
            )
    if in_flight_key is not None and in_flight_key not in model:
        op, _, value = in_flight  # type: ignore[misc]
        new = value if op == "put" else None
        actual = recovered.get(in_flight_key)
        if actual is not None and actual != new:
            outcome.failures.append(
                f"in-flight key {in_flight_key!r}: got {actual!r}, "
                f"expected None or {new!r}"
            )


def count_workload_accesses(
    engine: str, script: list[tuple[str, bytes, bytes | None]], seed: int = 0
) -> int:
    """Device accesses the scripted workload performs (crash candidates)."""
    plan = FaultPlan(seed=seed, armed=False)
    tree = _registry().build_crash_tree(engine, plan, seed)
    plan.arm()
    _run_script(tree, script, {})
    plan.disarm()
    tree.close()
    return plan.access_count


def enumerate_crash_points(
    engine: str = "blsm",
    ops: int = 500,
    every: int = 1,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> CrashTestReport:
    """Crash at every ``every``-th I/O boundary; recover; verify.

    Engine construction and recovery run with the plan disarmed, so
    access index ``k`` always names the ``k``-th device access *of the
    workload* — the same boundary in every run of the same script.
    """
    registry = _registry()
    if engine not in registry.CRASH_ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{registry.CRASH_ENGINE_NAMES}"
        )
    if ops <= 0:
        raise ValueError(f"ops must be positive, got {ops}")
    if every <= 0:
        raise ValueError(f"every must be positive, got {every}")
    script = scripted_workload(ops, seed=seed)
    total = count_workload_accesses(engine, script, seed=seed)
    report = CrashTestReport(
        engine=engine,
        ops=ops,
        every=every,
        seed=seed,
        total_accesses=total,
        points_tested=0,
        crashes_triggered=0,
        recoveries_verified=0,
    )
    for access in range(1, total + 1, every):
        outcome = CrashOutcome(access_index=access, crashed=False, recovered=False)
        plan = FaultPlan.crash_at(access, seed=seed, armed=False)
        tree = registry.build_crash_tree(engine, plan, seed)
        model: dict[bytes, bytes | None] = {}
        in_flight: tuple[str, bytes, bytes | None] | None = None
        plan.arm()
        try:
            for op, key, value in script:
                in_flight = (op, key, value)
                if op == "put":
                    tree.put(key, value)
                    model[key] = value
                else:
                    tree.delete(key)
                    model[key] = None
                in_flight = None
        except CrashPoint:
            outcome.crashed = True
        finally:
            plan.disarm()
        if outcome.crashed:
            report.crashes_triggered += 1
            tree.stasis.crash()
            recovered = registry.recover_crash_tree(
                engine, tree.stasis, tree.options
            )
            outcome.recovered = True
            _verify(recovered, model, in_flight, outcome)
        else:
            # The boundary fell past the workload's last access (access
            # counts can shrink slightly when earlier crashes reorder
            # nothing — with a fixed script they should not, but stay
            # honest): verify the completed run instead.
            tree.close()
            _verify(tree, model, None, outcome)
        if outcome.ok and outcome.recovered:
            report.recoveries_verified += 1
        report.points_tested += 1
        report.outcomes.append(outcome)
        if progress is not None and access % 50 == 1:
            progress(
                f"crashtest[{engine}]: boundary {access}/{total}, "
                f"{len(report.failures)} failures"
            )
    return report


def format_report(report: CrashTestReport) -> str:
    """Human-readable summary (the ``repro crashtest`` output)."""
    lines = [
        f"crash-point enumeration: engine={report.engine} ops={report.ops} "
        f"every={report.every} seed={report.seed}",
        f"  workload device accesses : {report.total_accesses}",
        f"  boundaries tested        : {report.points_tested}",
        f"  crashes triggered        : {report.crashes_triggered}",
        f"  recoveries verified      : {report.recoveries_verified}",
        f"  failures                 : {len(report.failures)}",
    ]
    for outcome in report.failures[:10]:
        for failure in outcome.failures[:3]:
            lines.append(f"    at access {outcome.access_index}: {failure}")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"  verdict                  : {verdict}")
    return "\n".join(lines)
