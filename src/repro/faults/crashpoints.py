"""ALICE-style crash-point enumeration for the bLSM engines.

The harness answers the question §4.4.2's recovery design must answer:
*is every acknowledged write recoverable no matter where the process
dies?*  It runs a deterministic scripted workload against an engine
whose devices share an armed :class:`~repro.faults.plan.FaultPlan`,
crashing at every Nth device-access boundary (reads and writes across
both the data and log device, so merge I/O, buffer evictions, WAL forces
and logical-log forces are all crash candidates).  After each simulated
crash it drops volatile state, recovers via the engine's ``recover``
classmethod, and verifies the recovered store against a shadow model:

* every acknowledged write (``SYNC`` durability) must read back exactly;
* the single in-flight operation may surface as either its old or its
  new value — both outcomes are durable-by-contract.

This package sits *above* the engine layer, so the engine registry is
imported lazily inside functions — ``repro.faults`` itself stays
importable from the storage layer below.  Which trees can be enumerated
and how they are built/recovered lives in :mod:`repro.engines`
(``CRASH_ENGINE_NAMES`` / ``build_crash_tree`` / ``recover_crash_tree``),
the same registry the CLI draws from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CrashPoint
from repro.faults.plan import FaultPlan


@dataclass
class CrashOutcome:
    """What happened at one enumerated crash point."""

    access_index: int
    crashed: bool
    recovered: bool
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CrashTestReport:
    """Aggregate result of one crash-point enumeration run."""

    engine: str
    ops: int
    every: int
    seed: int
    total_accesses: int
    points_tested: int
    crashes_triggered: int
    recoveries_verified: int
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def scripted_workload(
    ops: int, seed: int = 0, keyspace: int | None = None
) -> list[tuple[str, bytes, bytes | None]]:
    """A deterministic op script: mostly puts, some deletes, reused keys."""
    rng = random.Random(seed)
    if keyspace is None:
        keyspace = max(ops // 2, 16)
    script: list[tuple[str, bytes, bytes | None]] = []
    for index in range(ops):
        key = f"key-{rng.randrange(keyspace):06d}".encode()
        if rng.random() < 0.15:
            script.append(("delete", key, None))
        else:
            script.append(("put", key, f"value-{index:06d}".encode()))
    return script


def _registry() -> Any:
    # Lazy: the registry imports the whole engine layer above us.
    from repro import engines

    return engines


def _run_script(
    tree: Any,
    script: list[tuple[str, bytes, bytes | None]],
    model: dict[bytes, bytes | None],
) -> None:
    """Apply the whole script, maintaining the acked-write model."""
    for op, key, value in script:
        if op == "put":
            tree.put(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model[key] = None


def _verify(
    recovered: Any,
    model: dict[bytes, bytes | None],
    in_flight: tuple[str, bytes, bytes | None] | None,
    outcome: CrashOutcome,
) -> None:
    in_flight_key = in_flight[1] if in_flight is not None else None
    for key, expected in sorted(model.items()):
        actual = recovered.get(key)
        if key == in_flight_key:
            op, _, value = in_flight  # type: ignore[misc]
            new = value if op == "put" else None
            if actual != expected and actual != new:
                outcome.failures.append(
                    f"key {key!r}: got {actual!r}, expected acked {expected!r} "
                    f"or in-flight {new!r}"
                )
        elif actual != expected:
            outcome.failures.append(
                f"key {key!r}: got {actual!r}, expected acked {expected!r}"
            )
    if in_flight_key is not None and in_flight_key not in model:
        op, _, value = in_flight  # type: ignore[misc]
        new = value if op == "put" else None
        actual = recovered.get(in_flight_key)
        if actual is not None and actual != new:
            outcome.failures.append(
                f"in-flight key {in_flight_key!r}: got {actual!r}, "
                f"expected None or {new!r}"
            )


def count_workload_accesses(
    engine: str, script: list[tuple[str, bytes, bytes | None]], seed: int = 0
) -> int:
    """Device accesses the scripted workload performs (crash candidates)."""
    plan = FaultPlan(seed=seed, armed=False)
    tree = _registry().build_crash_tree(engine, plan, seed)
    plan.arm()
    _run_script(tree, script, {})
    plan.disarm()
    tree.close()
    return plan.access_count


def enumerate_crash_points(
    engine: str = "blsm",
    ops: int = 500,
    every: int = 1,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> CrashTestReport:
    """Crash at every ``every``-th I/O boundary; recover; verify.

    Engine construction and recovery run with the plan disarmed, so
    access index ``k`` always names the ``k``-th device access *of the
    workload* — the same boundary in every run of the same script.
    """
    registry = _registry()
    if engine not in registry.CRASH_ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{registry.CRASH_ENGINE_NAMES}"
        )
    if ops <= 0:
        raise ValueError(f"ops must be positive, got {ops}")
    if every <= 0:
        raise ValueError(f"every must be positive, got {every}")
    script = scripted_workload(ops, seed=seed)
    total = count_workload_accesses(engine, script, seed=seed)
    report = CrashTestReport(
        engine=engine,
        ops=ops,
        every=every,
        seed=seed,
        total_accesses=total,
        points_tested=0,
        crashes_triggered=0,
        recoveries_verified=0,
    )
    for access in range(1, total + 1, every):
        outcome = CrashOutcome(access_index=access, crashed=False, recovered=False)
        plan = FaultPlan.crash_at(access, seed=seed, armed=False)
        tree = registry.build_crash_tree(engine, plan, seed)
        model: dict[bytes, bytes | None] = {}
        in_flight: tuple[str, bytes, bytes | None] | None = None
        plan.arm()
        try:
            for op, key, value in script:
                in_flight = (op, key, value)
                if op == "put":
                    tree.put(key, value)
                    model[key] = value
                else:
                    tree.delete(key)
                    model[key] = None
                in_flight = None
        except CrashPoint:
            outcome.crashed = True
        finally:
            plan.disarm()
        if outcome.crashed:
            report.crashes_triggered += 1
            tree.stasis.crash()
            recovered = registry.recover_crash_tree(
                engine, tree.stasis, tree.options
            )
            outcome.recovered = True
            _verify(recovered, model, in_flight, outcome)
        else:
            # The boundary fell past the workload's last access (access
            # counts can shrink slightly when earlier crashes reorder
            # nothing — with a fixed script they should not, but stay
            # honest): verify the completed run instead.
            tree.close()
            _verify(tree, model, None, outcome)
        if outcome.ok and outcome.recovered:
            report.recoveries_verified += 1
        report.points_tested += 1
        report.outcomes.append(outcome)
        if progress is not None and access % 50 == 1:
            progress(
                f"crashtest[{engine}]: boundary {access}/{total}, "
                f"{len(report.failures)} failures"
            )
    return report


# ---------------------------------------------------------------------------
# Group-commit crash matrix
# ---------------------------------------------------------------------------


def group_commit_script(
    batches: int, seed: int = 0, sessions: int = 4
) -> list[tuple[int, list[tuple[str, bytes, bytes | None]]]]:
    """A deterministic multi-session batch script: ``(session, ops)``."""
    rng = random.Random(seed)
    keyspace = max(batches, 16)
    script: list[tuple[int, list[tuple[str, bytes, bytes | None]]]] = []
    serial = 0
    for _ in range(batches):
        sid = rng.randrange(sessions)
        ops: list[tuple[str, bytes, bytes | None]] = []
        for _ in range(rng.randrange(1, 4)):
            key = f"key-{rng.randrange(keyspace):06d}".encode()
            if rng.random() < 0.15:
                ops.append(("delete", key, None))
            else:
                ops.append(("put", key, f"value-{serial:06d}".encode()))
            serial += 1
        script.append((sid, ops))
    return script


def _drive_group_commit(
    tree: Any,
    script: list[tuple[int, list[tuple[str, bytes, bytes | None]]]],
    applied: list[tuple[str, bytes, bytes | None]],
    tickets: list[Any],
) -> None:
    """Submit every batch with ``wait=False``; wait on every 5th ticket.

    The staggered waits are the point of the matrix: a wait drains the
    queue mid-stream, so a crash during it lands on a force covering a
    *partially drained* commit group — some tickets acked by the leader,
    the rest still queued.  ``applied`` accumulates the flattened record
    stream in seqno order and ``tickets`` the commit receipts, both
    mutated in place so the caller still sees the pre-crash truth when a
    CrashPoint unwinds.
    """
    queue = tree.stasis.group_commit
    for index, (sid, ops) in enumerate(script):
        ticket = tree.write_batch(ops, session=sid, wait=False)
        applied.extend(ops)
        tickets.append(ticket)
        if index % 5 == 4:
            queue.wait(ticket)
    tree.flush_log()


def _acked_records(
    script: list[tuple[int, list[tuple[str, bytes, bytes | None]]]],
    tickets: list[Any],
) -> int:
    """Records covered by resolved tickets (a seqno-prefix: the durable
    LSN is monotone, so a resolved ticket implies every earlier one)."""
    covered = 0
    for index, ticket in enumerate(tickets):
        if ticket.durable_at is None:
            break
        covered = sum(len(ops) for _, ops in script[: index + 1])
    return covered


def _verify_prefix_consistent(
    recovered: Any,
    applied: list[tuple[str, bytes, bytes | None]],
    min_records: int,
    outcome: CrashOutcome,
) -> None:
    """The recovered store must equal *some* seqno-prefix of the record
    stream no shorter than the acked coverage.

    Group commit's contract in one predicate: every record covered by a
    resolved ticket (leader *and* followers — they inherited the same
    durable LSN) survives, and whatever else survives is a clean prefix
    extension, never a gap — a follower's batch can't be half-applied
    ahead of the leader's force that acked it.
    """
    keys = sorted({key for _, key, _ in applied})
    actual = {key: recovered.get(key) for key in keys}
    state: dict[bytes, bytes | None] = {}
    for op, key, value in applied[:min_records]:
        state[key] = value if op == "put" else None
    for cut in range(min_records, len(applied) + 1):
        if cut > min_records:
            op, key, value = applied[cut - 1]
            state[key] = value if op == "put" else None
        if all(state.get(key) == actual[key] for key in keys):
            return
    outcome.failures.append(
        f"recovered state matches no record prefix >= {min_records} "
        f"(of {len(applied)} records)"
    )


def enumerate_group_commit_crash_points(
    batches: int = 60,
    every: int = 1,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> CrashTestReport:
    """Kill the GROUP-durability commit path at every I/O boundary.

    Runs a multi-session batch script through a ``GROUP``-mode BLSM tree
    (writes commit via the leader-based queue, ``wait=False``, with
    staggered waits so forces interleave with submits), crashing at
    every ``every``-th device access — which places kills inside leader
    forces over partially drained groups, memtable-flush merges, and the
    final drain.  After each crash, recovery must yield a state that is
    prefix-consistent with the submitted record stream and no shorter
    than what the resolved tickets acked (see
    :func:`_verify_prefix_consistent`).
    """
    from dataclasses import replace as _replace

    from repro.storage.logical_log import DurabilityMode

    if batches <= 0:
        raise ValueError(f"batches must be positive, got {batches}")
    if every <= 0:
        raise ValueError(f"every must be positive, got {every}")
    registry = _registry()
    script = group_commit_script(batches, seed=seed)

    def build(plan: FaultPlan) -> Any:
        from repro.core.tree import BLSM

        options = _replace(
            registry.crash_options(plan, seed),
            durability=DurabilityMode.GROUP,
        )
        return BLSM(options)

    # Counting run (disarmed): how many device accesses the full driven
    # workload performs — each one is a crash candidate.
    plan = FaultPlan(seed=seed, armed=False)
    tree = build(plan)
    plan.arm()
    _drive_group_commit(tree, script, [], [])
    plan.disarm()
    tree.close()
    total = plan.access_count

    report = CrashTestReport(
        engine="blsm-group",
        ops=sum(len(ops) for _, ops in script),
        every=every,
        seed=seed,
        total_accesses=total,
        points_tested=0,
        crashes_triggered=0,
        recoveries_verified=0,
    )
    for access in range(1, total + 1, every):
        outcome = CrashOutcome(
            access_index=access, crashed=False, recovered=False
        )
        plan = FaultPlan.crash_at(access, seed=seed, armed=False)
        tree = build(plan)
        applied: list[tuple[str, bytes, bytes | None]] = []
        tickets: list[Any] = []
        plan.arm()
        try:
            _drive_group_commit(tree, script, applied, tickets)
        except CrashPoint:
            outcome.crashed = True
        finally:
            plan.disarm()
        if outcome.crashed:
            report.crashes_triggered += 1
            acked = _acked_records(script, tickets)
            tree.stasis.crash()
            recovered = registry.recover_crash_tree(
                "blsm", tree.stasis, tree.options
            )
            outcome.recovered = True
            _verify_prefix_consistent(recovered, applied, acked, outcome)
        else:
            tree.close()
            # Boundary past the workload: the completed, fully drained
            # run must equal the full record stream exactly.
            _verify_prefix_consistent(
                tree, applied, len(applied), outcome
            )
        if outcome.ok and outcome.recovered:
            report.recoveries_verified += 1
        report.points_tested += 1
        report.outcomes.append(outcome)
        if progress is not None and access % 50 == 1:
            progress(
                f"crashtest[blsm-group]: boundary {access}/{total}, "
                f"{len(report.failures)} failures"
            )
    return report


@dataclass
class MigrationCrashReport:
    """Aggregate result of one migration crash-point enumeration run.

    Two families of crash points cover the whole protocol surface:
    *journal* boundaries (the process dies inside a migration-journal
    force — plan, copy-start, catch-up-start, switch, retire-done,
    prune) and *step* boundaries (the process dies between any two
    controller steps, i.e. with arbitrary amounts of cleared/copied/
    caught-up/retired data on the shards but no journal record in
    flight).  Every crash must recover to a consistent ownership map,
    read back every acknowledged write, and then be able to finish the
    migration.
    """

    ops: int
    seed: int
    journal_accesses: int
    migration_steps: int
    points_tested: int = 0
    crashes_triggered: int = 0
    recoveries_verified: int = 0
    journal_outcomes: list[CrashOutcome] = field(default_factory=list)
    step_outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [
            outcome
            for outcome in self.journal_outcomes + self.step_outcomes
            if not outcome.ok
        ]

    @property
    def ok(self) -> bool:
        return not self.failures


def _build_migration_fleet(seed: int, journal_plan: FaultPlan | None) -> Any:
    """A tiny 2-shard SYNC fleet with an attached migration controller.

    Faults attach only to the migration journal: each shard's device
    traffic is its own serial sequence (which is why the data-path crash
    harness cannot drive sharded engines), but the journal *is* one
    serial sequence — its force boundaries are exactly the protocol's
    durable transitions.
    """
    from repro.core.options import BLSMOptions
    from repro.shard.engine import ShardedEngine
    from repro.shard.migration import (
        MigrationJournal,
        MigrationThrottle,
        attach_migration,
    )
    from repro.shard.partitioner import RangePartitioner
    from repro.storage.logical_log import DurabilityMode

    options = BLSMOptions(
        c0_bytes=8 * 1024,
        buffer_pool_pages=16,
        durability=DurabilityMode.SYNC,
        seed=seed,
    )
    engine = ShardedEngine(
        options,
        shards=2,
        partitioner=RangePartitioner([b"key-000100"]),
    )
    journal = MigrationJournal(fault_plan=journal_plan, seed=seed)
    attach_migration(
        engine,
        journal=journal,
        chunk_keys=8,
        # The crash test wants step boundaries, not throttle boundaries:
        # a full budget share means the controller never defers.
        throttle=MigrationThrottle(1.0),
    )
    return engine


def _drive_migration_workload(
    engine: Any,
    script: list[tuple[str, bytes, bytes | None]],
    model: dict[bytes, bytes | None],
    start_at: int,
    stop_after_steps: int | None = None,
) -> int:
    """Interleave the scripted workload with migration steps.

    At op ``start_at`` a split of shard 0 is planned and started; once
    it retires, a merge of shard 0 follows — so both protocol kinds'
    journal records and step boundaries are enumerated in one scenario.
    Every workload op while a migration is active is followed by one
    controller step.  Returns the number of steps taken; with
    ``stop_after_steps`` set, stops stepping there (the driver then
    crashes the fleet at that exact step boundary).  A journal-fault
    :class:`~repro.errors.CrashPoint` propagates to the caller mid-drive
    with ``model`` reflecting every op acknowledged so far.
    """
    from repro.shard.migration import plan_merge, plan_split

    controller = engine.migration
    steps = 0
    started = 0  # how many of the scenario's two migrations began
    for index, (op, key, value) in enumerate(script):
        if op == "put":
            engine.put(key, value)
            model[key] = value
        else:
            engine.delete(key)
            model[key] = None
        if not controller.active and index >= start_at and started < 2:
            planner = plan_split if started == 0 else plan_merge
            plan = planner(engine, 0)
            started += 1
            if plan is not None:
                controller.start(plan)
        if controller.active:
            if stop_after_steps is not None and steps >= stop_after_steps:
                return steps
            controller.step()
            steps += 1
    while controller.active:
        if stop_after_steps is not None and steps >= stop_after_steps:
            return steps
        controller.step()
        steps += 1
    return steps


def _verify_fleet(
    recovered: Any, model: dict[bytes, bytes | None], outcome: CrashOutcome
) -> None:
    """Acked-write parity plus the fleet's structural invariants."""
    for key, expected in sorted(model.items()):
        actual = recovered.get(key)
        if actual != expected:
            outcome.failures.append(
                f"key {key!r}: got {actual!r}, expected acked {expected!r}"
            )
    from repro.testing.model import check_sharded_invariants

    try:
        check_sharded_invariants(recovered)
    except AssertionError as error:
        outcome.failures.append(f"invariant violated: {error}")


def enumerate_migration_crash_points(
    ops: int = 120,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> MigrationCrashReport:
    """Crash at every migration step and journal-force boundary; verify.

    Three-phase, like :func:`enumerate_crash_points`: a disarmed-plan
    counting run fixes the journal access count and step count for the
    scripted scenario; then one fresh fleet per journal boundary crashes
    inside that force, and one fresh fleet per step boundary crashes
    between those steps.  Each crash recovers via
    :func:`~repro.shard.migration.crash_and_recover`, is verified
    against the acked-write model and the sharded invariants, resumes
    the recovered migration to completion, and is verified again — a
    consistent ownership map is not enough if the migration can never
    finish.
    """
    from repro.shard.migration import crash_and_recover

    if ops <= 0:
        raise ValueError(f"ops must be positive, got {ops}")
    script = scripted_workload(ops, seed=seed, keyspace=max(ops // 2, 16))
    start_at = min(10, ops - 1)

    count_plan = FaultPlan(seed=seed, armed=False)
    engine = _build_migration_fleet(seed, count_plan)
    count_plan.arm()
    model: dict[bytes, bytes | None] = {}
    total_steps = _drive_migration_workload(engine, script, model, start_at)
    count_plan.disarm()
    total_accesses = count_plan.access_count
    engine.close()

    report = MigrationCrashReport(
        ops=ops,
        seed=seed,
        journal_accesses=total_accesses,
        migration_steps=total_steps,
    )

    def finish_and_verify(
        recovered: Any, model: dict[bytes, bytes | None], outcome: CrashOutcome
    ) -> None:
        _verify_fleet(recovered, model, outcome)
        controller = recovered.migration
        try:
            if controller is not None and controller.active:
                controller.run_to_completion()
        except Exception as error:  # noqa: BLE001 — a stuck resume fails
            outcome.failures.append(
                f"resume raised {type(error).__name__}: {error}"
            )
            return
        _verify_fleet(recovered, model, outcome)
        partitioner = recovered.partitioner
        if partitioner.history_depth:
            outcome.failures.append(
                f"placement history not pruned after completion "
                f"(depth {partitioner.history_depth})"
            )
        recovered.close()

    for access in range(1, total_accesses + 1):
        outcome = CrashOutcome(
            access_index=access, crashed=False, recovered=False
        )
        plan = FaultPlan.crash_at(access, seed=seed, armed=False)
        engine = _build_migration_fleet(seed, plan)
        model = {}
        plan.arm()
        try:
            _drive_migration_workload(engine, script, model, start_at)
        except CrashPoint:
            outcome.crashed = True
        finally:
            plan.disarm()
        if outcome.crashed:
            report.crashes_triggered += 1
            recovered = crash_and_recover(engine)
            outcome.recovered = True
            finish_and_verify(recovered, model, outcome)
        else:
            _verify_fleet(engine, model, outcome)
            engine.close()
        if outcome.ok and outcome.recovered:
            report.recoveries_verified += 1
        report.points_tested += 1
        report.journal_outcomes.append(outcome)
        if progress is not None:
            progress(
                f"migration crashtest: journal force {access}/"
                f"{total_accesses}, {len(report.failures)} failures"
            )

    for boundary in range(total_steps + 1):
        outcome = CrashOutcome(
            access_index=boundary, crashed=False, recovered=False
        )
        engine = _build_migration_fleet(seed, None)
        model = {}
        _drive_migration_workload(
            engine, script, model, start_at, stop_after_steps=boundary
        )
        outcome.crashed = True
        report.crashes_triggered += 1
        recovered = crash_and_recover(engine)
        outcome.recovered = True
        finish_and_verify(recovered, model, outcome)
        if outcome.ok:
            report.recoveries_verified += 1
        report.points_tested += 1
        report.step_outcomes.append(outcome)
        if progress is not None and boundary % 10 == 0:
            progress(
                f"migration crashtest: step boundary {boundary}/"
                f"{total_steps}, {len(report.failures)} failures"
            )
    return report


def format_migration_report(report: MigrationCrashReport) -> str:
    """Human-readable summary (the ``repro migrate --crash-matrix`` output)."""
    lines = [
        f"migration crash-point enumeration: ops={report.ops} "
        f"seed={report.seed}",
        f"  journal force boundaries : {report.journal_accesses}",
        f"  migration step boundaries: {report.migration_steps + 1}",
        f"  points tested            : {report.points_tested}",
        f"  crashes triggered        : {report.crashes_triggered}",
        f"  recoveries verified      : {report.recoveries_verified}",
        f"  failures                 : {len(report.failures)}",
    ]
    for outcome in report.failures[:10]:
        for failure in outcome.failures[:3]:
            lines.append(f"    at boundary {outcome.access_index}: {failure}")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"  verdict                  : {verdict}")
    return "\n".join(lines)


def format_report(report: CrashTestReport) -> str:
    """Human-readable summary (the ``repro crashtest`` output)."""
    lines = [
        f"crash-point enumeration: engine={report.engine} ops={report.ops} "
        f"every={report.every} seed={report.seed}",
        f"  workload device accesses : {report.total_accesses}",
        f"  boundaries tested        : {report.points_tested}",
        f"  crashes triggered        : {report.crashes_triggered}",
        f"  recoveries verified      : {report.recoveries_verified}",
        f"  failures                 : {len(report.failures)}",
    ]
    for outcome in report.failures[:10]:
        for failure in outcome.failures[:3]:
            lines.append(f"    at access {outcome.access_index}: {failure}")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"  verdict                  : {verdict}")
    return "\n".join(lines)
