"""Workload specifications (YCSB core workloads and custom mixes).

A :class:`WorkloadSpec` captures everything the paper's Section 5 varies:
the operation mix (read / update / blind-write / insert / scan /
read-modify-write), the request distribution, record sizing (the paper
uses 1000-byte values, Section 5.1), and scan lengths (1-4 for short
scans, 1-100 for long scans, Section 5.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError

#: The paper's record sizing: 1000-byte values, keys of tens of bytes.
DEFAULT_VALUE_BYTES = 1000


@dataclass
class WorkloadSpec:
    """One benchmark workload."""

    record_count: int
    """Keys loaded before the measured phase."""

    operation_count: int
    """Operations in the measured phase."""

    read_proportion: float = 0.0
    update_proportion: float = 0.0
    """Read-modify-write updates (read the record, write it back)."""

    blind_write_proportion: float = 0.0
    """Blind overwrites: no read first (the LSM-friendly primitive)."""

    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    rmw_proportion: float = 0.0
    """YCSB workload F style read-modify-write counted as one op."""

    delete_proportion: float = 0.0

    request_distribution: str = "uniform"
    """``uniform``, ``zipfian`` (scrambled), ``zipfian_clustered``
    or ``latest``."""

    value_bytes: int = DEFAULT_VALUE_BYTES
    scan_length_min: int = 1
    scan_length_max: int = 4
    ordered_inserts: bool = False
    """``True`` loads keys in key order (InnoDB's pre-sorted load)."""

    check_exists_on_insert: bool = False
    """Use ``insert_if_not_exists`` for inserts (Section 5.2 semantics)."""

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.blind_write_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.rmw_proportion
            + self.delete_proportion
        )
        if self.operation_count > 0 and not math.isclose(
            total, 1.0, abs_tol=1e-9
        ):
            raise WorkloadError(f"operation proportions sum to {total}, not 1")
        if self.record_count < 0 or self.operation_count < 0:
            raise WorkloadError("record_count and operation_count must be >= 0")
        if not 1 <= self.scan_length_min <= self.scan_length_max:
            raise WorkloadError(
                "require 1 <= scan_length_min <= scan_length_max"
            )
        if self.value_bytes <= 0:
            raise WorkloadError("value_bytes must be positive")

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate data."""
        return (
            self.update_proportion
            + self.blind_write_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.delete_proportion
        )


_STANDARD: dict[str, dict[str, float | str | int]] = {
    # YCSB core workloads, per Cooper et al. [11].
    "a": {"read_proportion": 0.5, "update_proportion": 0.5,
          "request_distribution": "zipfian"},
    "b": {"read_proportion": 0.95, "update_proportion": 0.05,
          "request_distribution": "zipfian"},
    "c": {"read_proportion": 1.0, "request_distribution": "zipfian"},
    "d": {"read_proportion": 0.95, "insert_proportion": 0.05,
          "request_distribution": "latest"},
    "e": {"scan_proportion": 0.95, "insert_proportion": 0.05,
          "request_distribution": "zipfian", "scan_length_max": 100},
    "f": {"read_proportion": 0.5, "rmw_proportion": 0.5,
          "request_distribution": "zipfian"},
}


def standard_workload(
    name: str,
    record_count: int,
    operation_count: int,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> WorkloadSpec:
    """One of the YCSB core workloads A-F."""
    try:
        overrides = dict(_STANDARD[name.lower()])
    except KeyError:
        raise WorkloadError(f"unknown standard workload {name!r}") from None
    return WorkloadSpec(
        record_count=record_count,
        operation_count=operation_count,
        value_bytes=value_bytes,
        **overrides,  # type: ignore[arg-type]
    )


def write_ratio_workload(
    write_fraction: float,
    record_count: int,
    operation_count: int,
    blind: bool,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> WorkloadSpec:
    """The Figure 8 sweep: reads vs writes at a given write fraction.

    Args:
        write_fraction: fraction of operations that write.
        blind: ``True`` for blind overwrites, ``False`` for
            read-modify-write (the paper plots both families).
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError(f"write_fraction must be in [0,1], got {write_fraction}")
    writes = write_fraction
    spec = {
        "blind_write_proportion" if blind else "update_proportion": writes,
        "read_proportion": 1.0 - writes,
    }
    return WorkloadSpec(
        record_count=record_count,
        operation_count=operation_count,
        request_distribution="uniform",
        value_bytes=value_bytes,
        **spec,  # type: ignore[arg-type]
    )
