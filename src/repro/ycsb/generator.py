"""Operation stream generation.

Turns a :class:`~repro.ycsb.workload.WorkloadSpec` into a deterministic
stream of operations against a growing keyspace, the way YCSB's client
threads do.  Keys follow YCSB's convention (``user`` + padded number);
by default insertion order is *hashed* (random-looking), matching the
paper's "50GB unordered data set" (Section 5.2); ordered mode reproduces
the pre-sorted load InnoDB needs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.ycsb.distributions import LatestChooser, fnv1a_64, make_chooser
from repro.ycsb.workload import WorkloadSpec


class OpKind(enum.Enum):
    """What one generated operation does."""

    READ = "read"
    UPDATE = "update"  # read-modify-write semantics
    BLIND_WRITE = "blind_write"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "rmw"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """One operation to run against an engine."""

    kind: OpKind
    key: bytes
    value: bytes | None = None
    scan_length: int = 0


def make_key(index: int, ordered: bool) -> bytes:
    """YCSB key naming: ``user`` + number (hashed unless ordered)."""
    if ordered:
        return b"user%019d" % index
    return b"user%019d" % fnv1a_64(index)


def make_value(rng: random.Random, nbytes: int) -> bytes:
    """A value payload of the configured size (content is irrelevant)."""
    return bytes([rng.randrange(256)]) * nbytes


class OperationGenerator:
    """Deterministic operation stream for one workload."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = random.Random(seed)
        self._inserted = spec.record_count
        self._chooser = make_chooser(
            spec.request_distribution, max(1, spec.record_count)
        )
        choices = [
            (OpKind.READ, spec.read_proportion),
            (OpKind.UPDATE, spec.update_proportion),
            (OpKind.BLIND_WRITE, spec.blind_write_proportion),
            (OpKind.INSERT, spec.insert_proportion),
            (OpKind.SCAN, spec.scan_proportion),
            (OpKind.RMW, spec.rmw_proportion),
            (OpKind.DELETE, spec.delete_proportion),
        ]
        self._kinds = [kind for kind, p in choices if p > 0]
        self._weights = [p for _, p in choices if p > 0]

    def load_keys(self):
        """Keys for the load phase, in the configured insertion order."""
        for index in range(self.spec.record_count):
            yield make_key(index, self.spec.ordered_inserts)

    def batches(self, batch_size: int):
        """Yield :meth:`operations` grouped into client batches.

        The batched runner issues each group through the engine's
        multi-key surface (``multi_get`` / ``apply_batch``); the final
        batch may be short.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        batch: list[Operation] = []
        for op in self.operations():
            batch.append(op)
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def prepared_operations(self, value_pool: int = 32) -> list[Operation]:
        """Materialize the whole operation stream up front, fast.

        The hot-path profiler's generation path: kind draws are chunked
        into a single ``choices(k=n)`` call, write values come from a
        small reusable pool (their content is irrelevant — only the
        size is simulated) and key rendering is cached per chosen
        index.  Distributions match :meth:`operations` but the RNG draw
        *order* differs, so the streams are not byte-identical;
        committed benchmark baselines and replay tests keep using
        :meth:`operations`.
        """
        spec = self.spec
        rng = self._rng
        n = spec.operation_count
        kinds = rng.choices(self._kinds, weights=self._weights, k=n)
        pool = [
            make_value(rng, spec.value_bytes)
            for _ in range(max(1, value_pool))
        ]
        pool_n = len(pool)
        key_cache: dict[int, bytes] = {}
        ordered = spec.ordered_inserts
        chooser = self._chooser
        grow = (
            chooser.grow if isinstance(chooser, LatestChooser) else None
        )
        choose = chooser.next
        scan_lo, scan_hi = spec.scan_length_min, spec.scan_length_max
        ops: list[Operation] = []
        append = ops.append
        for position, kind in enumerate(kinds):
            if kind is OpKind.INSERT:
                key = make_key(self._inserted, ordered)
                self._inserted += 1
                if grow is not None:
                    grow(self._inserted)
                append(Operation(kind, key, pool[position % pool_n]))
                continue
            index = choose(rng)
            key = key_cache.get(index)
            if key is None:
                key = make_key(index, ordered)
                key_cache[index] = key
            if kind is OpKind.SCAN:
                append(
                    Operation(
                        kind, key, scan_length=rng.randint(scan_lo, scan_hi)
                    )
                )
            elif kind is OpKind.READ or kind is OpKind.DELETE:
                append(Operation(kind, key))
            else:  # UPDATE, BLIND_WRITE, RMW carry a fresh value
                append(Operation(kind, key, pool[position % pool_n]))
        return ops

    def operations(self):
        """Yield ``spec.operation_count`` operations."""
        spec = self.spec
        for _ in range(spec.operation_count):
            kind = self._rng.choices(self._kinds, weights=self._weights)[0]
            if kind is OpKind.INSERT:
                key = make_key(self._inserted, spec.ordered_inserts)
                self._inserted += 1
                if isinstance(self._chooser, LatestChooser):
                    self._chooser.grow(self._inserted)
                yield Operation(
                    kind, key, make_value(self._rng, spec.value_bytes)
                )
                continue
            key = make_key(
                self._chooser.next(self._rng), spec.ordered_inserts
            )
            if kind is OpKind.SCAN:
                length = self._rng.randint(
                    spec.scan_length_min, spec.scan_length_max
                )
                yield Operation(kind, key, scan_length=length)
            elif kind is OpKind.READ:
                yield Operation(kind, key)
            elif kind is OpKind.DELETE:
                yield Operation(kind, key)
            else:  # UPDATE, BLIND_WRITE, RMW carry a fresh value
                yield Operation(
                    kind, key, make_value(self._rng, spec.value_bytes)
                )
