"""Operation-trace recording and replay.

The paper's motivating applications "ingest event logs ... and later
mine the data"; benchmarking such systems against *recorded* production
traces rather than synthetic distributions is standard practice.  This
module serializes an operation stream to a plain-text trace file and
replays it against any engine, so a workload captured once (or exported
from a real system) runs identically everywhere.

Trace format — one operation per line, tab-separated, keys and values
hex-encoded so arbitrary bytes survive:

    read    6b6579
    blind_write     6b6579  76616c7565
    scan    6b6579  12
    delete  6b6579
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.baselines.interface import KVEngine
from repro.ycsb.generator import Operation, OperationGenerator, OpKind
from repro.ycsb.metrics import LatencyStats
from repro.ycsb.runner import execute
from repro.ycsb.workload import WorkloadSpec

_VALUE_KINDS = {
    OpKind.UPDATE,
    OpKind.BLIND_WRITE,
    OpKind.INSERT,
    OpKind.RMW,
}


def write_trace(operations: Iterable[Operation], handle: IO[str]) -> int:
    """Serialize operations to an open text file; return the count."""
    count = 0
    for op in operations:
        fields = [op.kind.value, op.key.hex()]
        if op.kind in _VALUE_KINDS:
            fields.append((op.value or b"").hex())
        elif op.kind is OpKind.SCAN:
            fields.append(str(op.scan_length))
        handle.write("\t".join(fields) + "\n")
        count += 1
    return count


def read_trace(handle: IO[str]) -> Iterator[Operation]:
    """Parse a trace file back into operations."""
    for line_number, line in enumerate(handle, start=1):
        line = line.rstrip("\r\n")
        if not line.strip() or line.startswith("#"):
            continue
        fields = line.split("\t")
        try:
            kind = OpKind(fields[0])
            key = bytes.fromhex(fields[1])
        except (ValueError, IndexError) as error:
            raise ValueError(
                f"malformed trace line {line_number}: {line!r}"
            ) from error
        if kind in _VALUE_KINDS:
            if len(fields) < 3:
                raise ValueError(
                    f"trace line {line_number} is missing a value"
                )
            yield Operation(kind, key, bytes.fromhex(fields[2]))
        elif kind is OpKind.SCAN:
            if len(fields) < 3:
                raise ValueError(
                    f"trace line {line_number} is missing a scan length"
                )
            yield Operation(kind, key, scan_length=int(fields[2]))
        else:
            yield Operation(kind, key)


def record_workload_trace(
    spec: WorkloadSpec, handle: IO[str], seed: int = 0
) -> int:
    """Generate a workload's operation stream straight into a trace file."""
    generator = OperationGenerator(spec, seed=seed)
    return write_trace(generator.operations(), handle)


def replay_trace(engine: KVEngine, handle: IO[str]) -> tuple[int, LatencyStats]:
    """Replay a trace against an engine; return (ops, latency stats)."""
    stats = LatencyStats()
    operations = 0
    clock = engine.clock
    for op in read_trace(handle):
        before = clock.now
        execute(engine, op)
        stats.record(clock.now - before)
        operations += 1
    return operations, stats
