"""Request distributions, ported from YCSB.

YCSB's Zipfian generator implements the rejection-free algorithm of
Gray et al. ("Quickly generating billion-record synthetic databases"),
with the default skew constant theta = 0.99.  The *scrambled* variant —
YCSB's default for read workloads — hashes the Zipfian rank so the
popular keys are spread across the keyspace instead of clustered at the
low end.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

ZIPFIAN_CONSTANT = 0.99
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's scrambling hash)."""
    h = _FNV_OFFSET
    # Iterating the little-endian byte string is the same octet sequence
    # as masking/shifting 8 times, with fewer interpreter ops — this runs
    # once per generated key.
    for octet in (value & _MASK64).to_bytes(8, "little"):
        h = ((h ^ octet) * _FNV_PRIME) & _MASK64
    return h


def zeta(n: int, theta: float) -> float:
    """Generalized harmonic number: sum of 1/i**theta for i in 1..n."""
    return sum(1.0 / (i**theta) for i in range(1, n + 1))


class KeyChooser(ABC):
    """Chooses which of ``n`` items a request targets."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"item count must be positive, got {n}")
        self.n = n

    @abstractmethod
    def next(self, rng: random.Random) -> int:
        """Return an item index in ``[0, n)``."""


class UniformChooser(KeyChooser):
    """Every item equally likely."""

    def next(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianChooser(KeyChooser):
    """Zipf-distributed ranks: item 0 is the most popular.

    Implements YCSB's ZipfianGenerator (Gray et al.): closed-form inverse
    transform using precomputed zeta values.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT) -> None:
        super().__init__(n)
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.theta = theta
        self._zetan = zeta(n, theta)
        self._zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfianChooser(KeyChooser):
    """Zipfian popularity spread uniformly over the keyspace.

    YCSB's default for skewed request workloads: the hot set is a random
    subset of keys rather than the lexicographically smallest ones, which
    matters for tree locality.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT) -> None:
        super().__init__(n)
        self._zipfian = ZipfianChooser(n, theta)
        # Zipfian ranks repeat heavily (that is the point of the skew),
        # so memoizing the pure scramble turns the per-request hash into
        # a dict hit.  Bounded by n distinct ranks.
        self._scrambled: dict[int, int] = {}

    def next(self, rng: random.Random) -> int:
        rank = self._zipfian.next(rng)
        index = self._scrambled.get(rank)
        if index is None:
            index = self._scrambled[rank] = fnv1a_64(rank) % self.n
        return index


class LatestChooser(KeyChooser):
    """Skewed towards the most recently inserted items (YCSB workload D)."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT) -> None:
        super().__init__(n)
        self._zipfian = ZipfianChooser(n, theta)

    def next(self, rng: random.Random) -> int:
        return self.n - 1 - self._zipfian.next(rng)

    def grow(self, n: int) -> None:
        """Track an expanding keyspace as inserts land."""
        if n > self.n:
            self.n = n
            self._zipfian = ZipfianChooser(n, self._zipfian.theta)


def make_chooser(name: str, n: int) -> KeyChooser:
    """Build a chooser by YCSB distribution name."""
    if name == "uniform":
        return UniformChooser(n)
    if name == "zipfian":
        return ScrambledZipfianChooser(n)
    if name == "zipfian_clustered":
        return ZipfianChooser(n)
    if name == "latest":
        return LatestChooser(n)
    raise ValueError(f"unknown request distribution {name!r}")
