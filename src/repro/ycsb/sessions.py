"""Open-loop multi-session workload execution (the session layer bench).

Where :mod:`repro.ycsb.open_loop` models one production client, this
runner models N concurrent *sessions* sharing one engine: each session
has its own arrival process, the merged arrival stream drives the
engine in global time order, and writes commit through
:meth:`~repro.baselines.interface.KVEngine.commit_batch` with
``wait=False`` — the session keeps issuing while the group-commit queue
resolves its ticket.  That separation is the point of the bench:
*queueing delay* (arrival to service start) and *ack latency* (arrival
to durable) are measured independently of service time, so the
forces-per-commit amortization of group commit shows up as ack latency
staying flat while N grows.

Arrival processes:

* ``uniform`` — each session issues at a fixed interval (paced load
  generator), sessions mutually staggered only by their stream phase.
* ``poisson`` — exponential inter-arrivals per session (independent
  clients); the merged stream is Poisson at the full offered rate.
* ``diurnal`` — an inhomogeneous Poisson process whose rate swings
  sinusoidally around the mean (period ``diurnal_period`` seconds,
  amplitude ``diurnal_amplitude``), sampled by thinning.  The burst
  crests push the queue into its heavy-traffic regime, which is where
  the queueing-delay p99.9 timeline earns its keep.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.interface import KVEngine, WriteBatch
from repro.obs.timeline import WindowedTimeline
from repro.storage.group_commit import CommitTicket, GroupCommitQueue
from repro.ycsb.generator import OperationGenerator, OpKind
from repro.ycsb.metrics import LatencyStats
from repro.ycsb.workload import WorkloadSpec

ARRIVAL_MODES = ("uniform", "poisson", "diurnal")


@dataclass
class SessionsResult:
    """Outcome of one multi-session open-loop run."""

    engine: str
    sessions: int
    offered_rate: float
    arrival: str
    operations: int
    reads: int
    writes: int
    queueing: LatencyStats
    """Arrival to service start, per operation."""
    ack_latency: LatencyStats
    """Arrival to durable acknowledgement, per committed batch."""
    read_latency: LatencyStats
    """Arrival to completion, per read/scan."""
    timeline: list[dict[str, float]]
    """Per-window percentile rows (queue/write/read channels) over the
    run, from the shared :class:`~repro.obs.timeline.WindowedTimeline`."""
    forces: int
    commits: int
    committed_ops: int
    group_sizes: dict[int, int]
    completed_in: float
    backlog_seconds: float
    arrival_window: float
    completed_in_window: int
    io: dict[str, Any] = field(default_factory=dict)
    probes: list[dict[str, float]] = field(default_factory=list)
    """Cumulative engine-metric samples taken at window boundaries
    (present when :func:`run_sessions` was given a ``probe``)."""

    @property
    def forces_per_commit(self) -> float:
        """Log-device forces per committed batch (1.0 = no grouping)."""
        if self.commits == 0:
            return 0.0
        return self.forces / self.commits

    @property
    def forces_per_op(self) -> float:
        """Log-device forces per committed operation."""
        if self.committed_ops == 0:
            return 0.0
        return self.forces / self.committed_ops

    @property
    def achieved_rate(self) -> float:
        """Completions per second while load was offered (see
        :meth:`repro.ycsb.open_loop.OpenLoopResult.achieved_rate`)."""
        if self.arrival_window > 0:
            return self.completed_in_window / self.arrival_window
        if self.completed_in <= 0:
            return 0.0
        return self.operations / self.completed_in

    def summary(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "sessions": self.sessions,
            "offered_rate": self.offered_rate,
            "arrival": self.arrival,
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "achieved_rate": self.achieved_rate,
            "completed_in": self.completed_in,
            "backlog_seconds": self.backlog_seconds,
            "queueing": self.queueing.summary(),
            "ack_latency": self.ack_latency.summary(),
            "read_latency": self.read_latency.summary(),
            "forces": self.forces,
            "commits": self.commits,
            "committed_ops": self.committed_ops,
            "forces_per_commit": self.forces_per_commit,
            "forces_per_op": self.forces_per_op,
            "group_sizes": {
                str(size): count
                for size, count in sorted(self.group_sizes.items())
            },
            "timeline": self.timeline,
        }


def commit_queues(engine: KVEngine) -> list[GroupCommitQueue]:
    """Every group-commit queue under an engine (one per Stasis).

    A tree-backed engine has one; a sharded engine has one per shard's
    substrate; engines off the Stasis stack (bitcask, btree...) have
    none and report zero forces.
    """
    tree = getattr(engine, "tree", None)
    if tree is not None:
        return [tree.stasis.group_commit]
    shards = getattr(engine, "shards", None)
    if shards is not None:
        return [queue for shard in shards for queue in commit_queues(shard)]
    stasis = getattr(engine, "stasis", None)
    if stasis is not None:
        return [stasis.group_commit]
    return []


def logical_logs(engine: KVEngine) -> list[Any]:
    """Every logical log under an engine (one per Stasis substrate).

    The bench counts *log forces* here rather than at the commit queue:
    under ``sync`` durability every write forces inside ``log()`` and
    never passes through the queue, so the queue's own counter would
    report zero for exactly the baseline the comparison needs.
    """
    tree = getattr(engine, "tree", None)
    if tree is not None:
        return [tree.stasis.logical_log]
    shards = getattr(engine, "shards", None)
    if shards is not None:
        return [log for shard in shards for log in logical_logs(shard)]
    stasis = getattr(engine, "stasis", None)
    if stasis is not None:
        return [stasis.logical_log]
    return []


def _next_arrival(
    mode: str,
    rng: random.Random,
    t: float,
    per_rate: float,
    period: float,
    amplitude: float,
) -> float:
    if mode == "uniform":
        return t + 1.0 / per_rate
    if mode == "poisson":
        return t + rng.expovariate(per_rate)
    # Diurnal burst: inhomogeneous Poisson via thinning.  Candidates
    # arrive at the peak rate; each survives with probability
    # rate(t)/peak, which reproduces rate(t) exactly (Lewis & Shedler).
    peak = per_rate * (1.0 + amplitude)
    while True:
        t += rng.expovariate(peak)
        rate = per_rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        )
        if rng.random() * peak <= rate:
            return t


def run_sessions(
    engine: KVEngine,
    spec: WorkloadSpec,
    offered_rate: float,
    sessions: int = 8,
    arrival: str = "poisson",
    seed: int = 0,
    window_seconds: float | None = None,
    diurnal_period: float = 20.0,
    diurnal_amplitude: float = 0.8,
    probe: Callable[[], dict[str, float]] | None = None,
) -> SessionsResult:
    """Drive ``spec`` through N concurrent open-loop sessions.

    Reads run inline at their arrival (service charged to the clock as
    usual).  Writes become one-op :class:`WriteBatch` commits submitted
    with ``wait=False``: the ticket resolves when a leader's force
    covers it, and the session's *ack latency* is measured at
    ``ticket.durable_at`` — the session itself moves on immediately,
    which is what lets a second session's commit join the first's force
    group.  UPDATE/RMW reads the key inline, then commits the write.

    ``probe``, when given, is called at each window boundary (and once
    before the first arrival and once after the final flush) and must
    return a flat dict of *cumulative* engine metrics; each sample is
    stored with the boundary time ``t`` plus the instantaneous commit
    ``queue_depth``.  The stability bench differences consecutive
    samples into per-window stall/backpressure timelines.
    """
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be positive, got {offered_rate}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if arrival not in ARRIVAL_MODES:
        raise ValueError(
            f"arrival must be one of {ARRIVAL_MODES}, got {arrival!r}"
        )
    generator = OperationGenerator(spec, seed=seed)
    ops_iter = iter(generator.operations())
    per_rate = offered_rate / sessions
    clock = engine.clock
    base = clock.now
    if window_seconds is None:
        expected = max(1, spec.operation_count) / offered_rate
        window_seconds = max(1e-9, expected / 12.0)

    logs = logical_logs(engine)
    forces_before = sum(log.forces for log in logs)
    rngs = [random.Random(seed * 1_000_003 + s + 11) for s in range(sessions)]
    heap: list[tuple[float, int]] = []
    for sid in range(sessions):
        first = _next_arrival(
            arrival, rngs[sid], base, per_rate, diurnal_period,
            diurnal_amplitude,
        )
        heapq.heappush(heap, (first, sid))

    queueing = LatencyStats()
    ack_latency = LatencyStats()
    read_latency = LatencyStats()
    timeline = WindowedTimeline(window_seconds, base=base)
    outstanding: list[tuple[CommitTicket, float]] = []
    completions: list[float] = []
    operations = reads = writes = 0
    first_arrival: float | None = None
    last_arrival = base
    probes: list[dict[str, float]] = []
    probed_through = -1

    def take_probe(index: int, at: float) -> None:
        nonlocal probed_through
        if probe is None:
            return
        sample: dict[str, float] = {
            "t": at,
            "queue_depth": float(len(outstanding)),
        }
        sample.update(probe())
        probes.append(sample)
        probed_through = index

    def resolve_acked() -> None:
        remaining: list[tuple[CommitTicket, float]] = []
        for ticket, arrived in outstanding:
            if ticket.durable_at is not None:
                latency = max(0.0, ticket.durable_at - arrived)
                ack_latency.record(latency)
                timeline.record(arrived, "write", latency)
                completions.append(ticket.durable_at)
            else:
                remaining.append((ticket, arrived))
        outstanding[:] = remaining

    take_probe(0, base)

    while heap:
        op = next(ops_iter, None)
        if op is None:
            break
        t, sid = heapq.heappop(heap)
        heapq.heappush(
            heap,
            (
                _next_arrival(
                    arrival, rngs[sid], t, per_rate, diurnal_period,
                    diurnal_amplitude,
                ),
                sid,
            ),
        )
        if first_arrival is None:
            first_arrival = t
        last_arrival = t
        # Queueing delay: how long this arrival waits for the engine's
        # foreground to be free.  (The engine is a serial resource on
        # the virtual clock; with the clock behind the arrival, the op
        # starts the instant it arrives.)
        delay = max(0.0, clock.now - t)
        queueing.record(delay)
        index = timeline.index_of(t)
        timeline.record(t, "queue", delay)
        if index > probed_through:
            take_probe(index, timeline.window_start(index))
        clock.advance_to(t)
        resolve_acked()
        operations += 1
        if op.kind is OpKind.READ:
            engine.get(op.key)
            read_latency.record(clock.now - t)
            timeline.record(t, "read", clock.now - t)
            completions.append(clock.now)
            reads += 1
        elif op.kind is OpKind.SCAN:
            for _ in engine.scan(op.key, limit=op.scan_length):
                pass
            read_latency.record(clock.now - t)
            timeline.record(t, "read", clock.now - t)
            completions.append(clock.now)
            reads += 1
        else:
            batch = WriteBatch()
            if op.kind is OpKind.DELETE:
                batch.delete(op.key)
            elif op.kind in (OpKind.UPDATE, OpKind.RMW):
                assert op.value is not None
                engine.get(op.key)  # the read half, inline
                batch.put(op.key, op.value)
            else:  # BLIND_WRITE / INSERT
                assert op.value is not None
                batch.put(op.key, op.value)
            ticket = engine.commit_batch(batch, session=sid, wait=False)
            outstanding.append((ticket, t))
            writes += 1
    # Durability barrier: resolve every in-flight ticket, then collect.
    engine.flush()
    resolve_acked()
    for ticket, arrived in outstanding:
        latency = max(0.0, clock.now - arrived)
        ack_latency.record(latency)
        timeline.record(arrived, "write", latency)
        completions.append(clock.now)
    outstanding.clear()
    take_probe(probed_through + 1, clock.now)

    queues = commit_queues(engine)
    group_sizes: dict[int, int] = {}
    for queue in queues:
        for size, count in queue.group_sizes.items():
            group_sizes[size] = group_sizes.get(size, 0) + count
    window = last_arrival - (first_arrival if first_arrival is not None else last_arrival)
    rows = timeline.rows()
    for row in rows:
        # Every arrival lands one "queue" sample, so the queue channel's
        # count is the window's operation count (the legacy "ops" key).
        row["ops"] = row.get("queue_n", 0.0)
    return SessionsResult(
        engine=engine.name,
        sessions=sessions,
        offered_rate=offered_rate,
        arrival=arrival,
        operations=operations,
        reads=reads,
        writes=writes,
        queueing=queueing,
        ack_latency=ack_latency,
        read_latency=read_latency,
        timeline=rows,
        forces=sum(log.forces for log in logs) - forces_before,
        commits=sum(queue.commits for queue in queues),
        committed_ops=sum(queue.committed_ops for queue in queues),
        group_sizes=group_sizes,
        completed_in=clock.now - (first_arrival or clock.now),
        backlog_seconds=max(0.0, clock.now - last_arrival),
        arrival_window=window,
        completed_in_window=sum(
            1 for done in completions if done <= last_arrival
        ),
        io=engine.io_summary(),
        probes=probes,
    )
