"""Latency statistics and throughput timeseries.

The paper's evaluation reports windowed throughput (ops/sec over elapsed
time, Figures 7 and 9), per-operation latency series, and summary
numbers.  Latencies here are in *virtual* seconds — the clock delta each
operation observed, including merge work and backpressure charged to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class LatencyStats:
    """Streaming latency collector with exact percentiles.

    Keeps every sample (benchmarks run at simulation scale, so the
    sample counts are modest) and sorts lazily.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted = True
        self._max = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._sorted = False
        if seconds > self._max:
            self._max = seconds

    def merge(self, other: "LatencyStats") -> None:
        """Fold another collector's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted = False
        if other._max > self._max:
            self._max = other._max

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        # Maintained incrementally in record(); a rescan here costs O(n)
        # per access and benchmarks read it once per window.
        return self._max

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100), nearest-rank."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(0, math.ceil(p / 100.0 * len(self._samples)) - 1)
        return self._samples[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max,
        }


@dataclass
class BatchStats:
    """Batch-granularity accounting for the batched runner.

    Per-operation latencies in a batched run all equal their batch's
    latency (every op in the batch completes when the batch does), so
    the batch-level view is where amortization shows: mean batch size,
    and the latency each *round trip* cost.
    """

    batches: int = 0
    operations: int = 0
    latency: "LatencyStats" = field(default_factory=lambda: LatencyStats())

    def record(self, ops: int, seconds: float) -> None:
        self.batches += 1
        self.operations += ops
        self.latency.record(seconds)

    @property
    def mean_size(self) -> float:
        return self.operations / self.batches if self.batches else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "batches": float(self.batches),
            "operations": float(self.operations),
            "mean_size": self.mean_size,
            "latency": self.latency.summary(),
        }


class BucketedHistogram:
    """Memory-bounded latency histogram with geometric buckets.

    `LatencyStats` keeps every sample for exact percentiles; at millions
    of operations that costs memory proportional to the run.  This
    histogram keeps a fixed number of geometric buckets (HDR-histogram
    style): each bucket spans a constant ratio, so percentile estimates
    carry bounded *relative* error (half the bucket ratio) at O(1)
    memory.
    """

    def __init__(
        self,
        min_latency: float = 1e-7,
        max_latency: float = 3600.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if not 0 < min_latency < max_latency:
            raise ValueError("require 0 < min_latency < max_latency")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self._min = min_latency
        self._ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._log_ratio = math.log(self._ratio)
        span = math.log(max_latency / min_latency)
        self._counts = [0] * (int(math.ceil(span / self._log_ratio)) + 2)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        self._count += 1
        self._sum += seconds
        self._max = max(self._max, seconds)
        self._counts[self._bucket(seconds)] += 1

    def _bucket(self, seconds: float) -> int:
        if seconds <= self._min:
            return 0
        index = int(math.log(seconds / self._min) / self._log_ratio) + 1
        return min(index, len(self._counts) - 1)

    def _bucket_upper(self, index: int) -> float:
        if index == 0:
            return self._min
        return self._min * self._ratio**index

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (upper bound of its bucket)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self._count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index == len(self._counts) - 1:
                    return self._max  # overflow bucket: report observed
                return min(self._bucket_upper(index), self._max)
        return self._max

    def merge(self, other: "BucketedHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if len(other._counts) != len(self._counts) or other._min != self._min:
            raise ValueError("histograms have different geometry")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)


@dataclass
class Window:
    """One timeseries bucket."""

    start: float
    ops: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.ops if self.ops else 0.0


@dataclass
class Timeseries:
    """Windowed ops/sec and latency over virtual time (Figures 7, 9).

    The final window is usually *partial*: observation ends mid-window
    when the run stops.  Dividing its op count by the full window length
    would show a spurious throughput dip at the tail of a plot, so the
    harness records the end of observation (:attr:`end_time`) and the
    final window is scaled by the time actually observed in it.
    """

    window_seconds: float
    windows: list[Window] = field(default_factory=list)
    end_time: float | None = None
    """When observation stopped (virtual seconds).  ``None`` means
    unknown; the final window is then assumed complete."""

    def record(self, t: float, latency: float) -> None:
        index = int(t / self.window_seconds)
        while len(self.windows) <= index:
            self.windows.append(
                Window(start=len(self.windows) * self.window_seconds)
            )
        window = self.windows[index]
        window.ops += 1
        window.latency_sum += latency
        window.latency_max = max(window.latency_max, latency)

    def window_duration(self, index: int) -> float:
        """Observed duration of window ``index`` (the final window is
        truncated at :attr:`end_time` when that is known)."""
        window = self.windows[index]
        if self.end_time is not None and index == len(self.windows) - 1:
            observed = self.end_time - window.start
            if 0.0 < observed < self.window_seconds:
                return observed
        return self.window_seconds

    def throughputs(self) -> list[float]:
        """Ops/sec per window, partial final window scaled."""
        return [
            w.ops / self.window_duration(i) for i, w in enumerate(self.windows)
        ]

    def max_latencies(self) -> list[float]:
        return [w.latency_max for w in self.windows]

    def rows(self) -> list[tuple[float, float, float, float]]:
        """(window start, ops/sec, mean latency, max latency) rows."""
        return [
            (w.start, w.ops / self.window_duration(i), w.mean_latency, w.latency_max)
            for i, w in enumerate(self.windows)
        ]
