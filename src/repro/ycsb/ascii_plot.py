"""ASCII rendering of benchmark series.

The benchmark harness writes its reproduced tables to text files; for
the timeseries figures (7 and 9) a sparkline makes the shape — steady
vs collapsing throughput — visible in the report itself.
"""

from __future__ import annotations

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int | None = None) -> str:
    """One-line block-character rendering of a series.

    Args:
        values: the series; negative values are clamped to zero.
        width: optional output width; the series is downsampled by
            averaging equal slices.
    """
    if not values:
        return ""
    series = [max(0.0, value) for value in values]
    if width is not None and width > 0 and len(series) > width:
        series = _downsample(series, width)
    top = max(series)
    if top <= 0:
        return _BLOCKS[0] * len(series)
    steps = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[min(steps, int(round(value / top * steps)))]
        for value in series
    )


def _downsample(series: list[float], width: int) -> list[float]:
    chunk = len(series) / width
    output = []
    for i in range(width):
        lo = int(i * chunk)
        hi = max(lo + 1, int((i + 1) * chunk))
        window = series[lo:hi]
        output.append(sum(window) / len(window))
    return output


def render_timeseries(
    label: str, values: list[float], width: int = 72
) -> list[str]:
    """A labelled sparkline plus its scale, as report lines."""
    if not values:
        return [f"{label}: (empty)"]
    return [
        f"{label}  max={max(values):,.0f}  min={min(values):,.0f}",
        sparkline(values, width=width),
    ]
