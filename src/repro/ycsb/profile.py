"""The hot-path CPU profiling bench (``repro profile``, BENCH_10).

Every other bench in this repo reports *virtual* time — device service
charged to the simulated clock.  This one measures the opposite axis:
how much host CPU the simulator itself burns per operation, because a
simulator that crawls limits every experiment built on it.  The
headline metric is **simulated operations per CPU-second**
(:func:`time.process_time`), driving the default YCSB mix through the
real engine hot path: SimDisk charging, memtable insert, bloom probes,
merge scheduling and op generation.

Two measurement surfaces:

* :func:`profile_workload` — load + run one workload against a bLSM
  engine built with a chosen memtable backend, observability off, ops
  pre-generated (:meth:`~repro.ycsb.generator.OperationGenerator.
  prepared_operations`); best-of-``trials`` CPU rate.
* :func:`memtable_microbench` / :func:`profile_phases` — Szanto-style
  component costs: per-structure insert/point-read/scan/drain, and
  per-subsystem op-generation/bloom/disk-charge/metrics-dispatch costs.

Results assemble into the shared :class:`~repro.obs.report.BenchReport`
envelope (``repro profile --memtable all --json BENCH_10.json``).  The
committed baseline in :data:`PRE_PR_BASELINE_OPS_PER_CPU_SECOND` is
what the *pre-optimization* tree sustained on this workload; the
``speedup_vs_baseline`` metrics gate the optimization work.

CPU-seconds are machine-dependent (unlike every virtual-time metric in
BENCH_6..9), so baseline comparisons for this bench use deliberately
wide tolerances and CI floors are set conservatively — the numbers
move with the host, regressions of interest move multiples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.memtable import MEMTABLE_NAMES, MemTable
from repro.obs.report import BenchReport, new_report
from repro.records import Record
from repro.ycsb.generator import OperationGenerator
from repro.ycsb.workload import WorkloadSpec, standard_workload

__all__ = [
    "PRE_PR_BASELINE_OPS_PER_CPU_SECOND",
    "ProfileResult",
    "memtable_microbench",
    "profile_compare_rules",
    "profile_memtables",
    "profile_phases",
    "profile_report",
    "profile_workload",
]

#: Simulated ops per CPU-second the tree sustained on this exact
#: workload (YCSB-A, 2000 records + 10000 ops, closed loop) *before*
#: the hot-path optimization pass, measured on the reference container.
#: The ``speedup_vs_baseline`` metrics divide by this.
PRE_PR_BASELINE_OPS_PER_CPU_SECOND = 11267.0


@dataclass
class ProfileResult:
    """One memtable configuration's wall-clock profile."""

    memtable: str
    workload: str
    records: int
    operations: int
    trials: int
    load_cpu_seconds: float
    """Load-phase CPU of the best trial."""
    run_cpu_seconds: float
    """Measured-phase CPU of the best trial."""
    trial_rates: list[float]
    """Total ops/CPU-second of every trial (best-of gates, all shown)."""

    @property
    def total_ops(self) -> int:
        return self.records + self.operations

    @property
    def cpu_seconds(self) -> float:
        return self.load_cpu_seconds + self.run_cpu_seconds

    @property
    def ops_per_cpu_second(self) -> float:
        """Best-of-trials rate (standard practice for CPU microbenches:
        the minimum time is the least noise-contaminated sample)."""
        return max(self.trial_rates) if self.trial_rates else 0.0

    @property
    def speedup_vs_baseline(self) -> float:
        return self.ops_per_cpu_second / PRE_PR_BASELINE_OPS_PER_CPU_SECOND

    def summary(self) -> dict[str, Any]:
        """This configuration's metric block in the BENCH_10 report."""
        return {
            "memtable": self.memtable,
            "ops_per_cpu_second": self.ops_per_cpu_second,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "load_cpu_seconds": self.load_cpu_seconds,
            "run_cpu_seconds": self.run_cpu_seconds,
            "trial_rates": list(self.trial_rates),
        }


def _cpu_spin(seconds: float) -> None:
    """Burn ``seconds`` of CPU (the planted-regression shim's engine).

    ``time.sleep`` would not move :func:`time.process_time`, so a
    regression planted with it would be invisible to a CPU-time gate;
    a busy spin is what an accidentally-introduced hot-path cost looks
    like to the profiler.
    """
    deadline = time.process_time() + seconds
    while time.process_time() < deadline:
        pass


def _workload_spec(
    workload: str, records: int, operations: int
) -> WorkloadSpec:
    return standard_workload(workload, records, operations)


def profile_workload(
    memtable: str = "skiplist",
    workload: str = "a",
    records: int = 2000,
    operations: int = 10000,
    seed: int = 0,
    trials: int = 1,
    observability: bool = False,
    spin_us: float = 0.0,
) -> ProfileResult:
    """Measure simulated ops per CPU-second for one memtable backend.

    Builds a fresh bLSM engine per trial (``memtable`` backend,
    observability off by default — the raw hot path), loads ``records``
    keys with direct puts, pre-generates the measured operation stream,
    then drives it through :func:`repro.ycsb.runner.execute` under
    :func:`time.process_time`.

    Args:
        trials: independent repetitions; the *best* trial's rate is the
            reported one (CPU timing noise only ever slows a trial).
        spin_us: CPU-microseconds burned per measured op — the planted
            regression shim the gate self-test uses.  Leave 0.
    """
    from repro.engines import build_engine
    from repro.ycsb.runner import execute

    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    spec = _workload_spec(workload, records, operations)
    spin = spin_us / 1e6
    rates: list[float] = []
    best = (0.0, 0.0)  # (load_cpu, run_cpu) of the best trial
    for trial in range(trials):
        engine = build_engine(
            "blsm",
            memtable=memtable,
            observability=observability,
            seed=seed,
        )
        try:
            generator = OperationGenerator(spec, seed=seed + trial)
            value = bytes(spec.value_bytes)
            put = engine.put
            cpu0 = time.process_time()
            for key in generator.load_keys():
                put(key, value)
            cpu1 = time.process_time()
            ops = generator.prepared_operations()
            if spin > 0.0:
                for op in ops:
                    execute(engine, op)
                    _cpu_spin(spin)
            else:
                for op in ops:
                    execute(engine, op)
            cpu2 = time.process_time()
        finally:
            engine.close()
        load_cpu, run_cpu = cpu1 - cpu0, cpu2 - cpu1
        total_cpu = max(1e-9, cpu2 - cpu0)
        rate = (records + operations) / total_cpu
        rates.append(rate)
        if rate == max(rates):
            best = (load_cpu, run_cpu)
    return ProfileResult(
        memtable=memtable,
        workload=workload,
        records=records,
        operations=operations,
        trials=trials,
        load_cpu_seconds=best[0],
        run_cpu_seconds=best[1],
        trial_rates=rates,
    )


def profile_memtables(
    kinds: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    **kwargs: Any,
) -> list[ProfileResult]:
    """Run :func:`profile_workload` for every requested backend."""
    results: list[ProfileResult] = []
    for kind in kinds if kinds is not None else MEMTABLE_NAMES:
        if progress is not None:
            progress(f"  profile: memtable={kind}")
        results.append(profile_workload(memtable=kind, **kwargs))
    return results


def _timed(fn: Callable[[], Any]) -> float:
    """CPU-seconds ``fn`` takes (one shot; callers scale to per-op)."""
    start = time.process_time()
    fn()
    return max(1e-9, time.process_time() - start)


def memtable_microbench(
    kind: str, n: int = 2000, value_bytes: int = 100, seed: int = 0
) -> dict[str, float]:
    """Per-structure component costs, in nanoseconds per operation.

    The Szanto-style ablation detail: the same ``n`` records through
    each backend's four hot verbs — ``insert``, ``point_read``,
    ``scan`` (full ordered iteration) and ``drain`` (snowshovel-style
    first/ceiling/remove sweep, the verb that makes the hash backend
    pay for its O(1) inserts).
    """
    from repro.ycsb.generator import make_key

    value = bytes(value_bytes)
    keys = [make_key(index, False) for index in range(n)]
    records = [
        Record.base(key, value, seqno) for seqno, key in enumerate(keys)
    ]
    table = MemTable(1 << 62, seed=seed, kind=kind)

    def insert() -> None:
        put = table.put
        for record in records:
            put(record)

    def point_read() -> None:
        get = table.get
        for key in keys:
            get(key)

    def scan() -> None:
        for _ in table:
            pass

    def drain() -> None:
        cursor = table.first_key()
        while cursor is not None:
            table.remove(cursor)
            cursor = table.ceiling_key(cursor)

    scale = 1e9 / n
    return {
        "insert_ns": _timed(insert) * scale,
        "point_read_ns": _timed(point_read) * scale,
        "scan_ns": _timed(scan) * scale,
        "drain_ns": _timed(drain) * scale,
    }


def profile_phases(
    n: int = 20000, value_bytes: int = 100, seed: int = 0
) -> dict[str, float]:
    """Isolated per-subsystem costs, in nanoseconds per call.

    Microbenches the individually-optimized hot-path components so a
    regression in one shows up attributed, not smeared across the
    end-to-end rate: YCSB op generation, bloom add+probe, one SimDisk
    charge, and one metrics-counter dispatch.
    """
    from repro.bloom import BloomFilter
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.clock import VirtualClock
    from repro.sim.disk import DiskModel, SimDisk
    from repro.ycsb.generator import make_key

    spec = _workload_spec("a", max(1, n // 10), n)
    generator = OperationGenerator(spec, seed=seed)

    def generate() -> None:
        generator.prepared_operations()

    keys = [make_key(index, False) for index in range(n)]
    bloom = BloomFilter(nbits=8 * n, nhashes=4)

    def bloom_probe() -> None:
        add = bloom.add
        for key in keys:
            add(key)
        for key in keys:
            key in bloom

    disk = SimDisk(DiskModel.hdd(), VirtualClock())

    def disk_charge() -> None:
        write = disk.write
        for index in range(n):
            write(index * 4096, 4096)

    registry = MetricsRegistry()
    counter = registry.counter("profile.dispatch")

    def metrics_dispatch() -> None:
        inc = counter.inc
        for _ in range(n):
            inc()

    scale = 1e9 / n
    return {
        "op_generation_ns": _timed(generate) * scale,
        "bloom_add_probe_ns": _timed(bloom_probe) * scale / 2.0,
        "disk_charge_ns": _timed(disk_charge) * scale,
        "metrics_dispatch_ns": _timed(metrics_dispatch) * scale,
    }


def profile_report(
    results: Sequence[ProfileResult],
    config: dict[str, Any],
    micro: dict[str, dict[str, float]] | None = None,
    phases: dict[str, float] | None = None,
) -> BenchReport:
    """Assemble profile results into the BENCH_10 envelope.

    ``metrics.best`` is the fastest configuration in the sweep — the
    ablation's answer to "what should the hot path run on" — and the
    block the CI perf gate and the 3x-speedup acceptance gate read.
    """
    if not results:
        raise ValueError("profile_report needs at least one result")
    blocks: dict[str, Any] = {}
    for result in results:
        block = result.summary()
        if micro and result.memtable in micro:
            block["micro"] = micro[result.memtable]
        blocks[result.memtable] = block
    best = max(results, key=lambda result: result.ops_per_cpu_second)
    metrics: dict[str, Any] = {
        "memtables": blocks,
        "best": {
            "memtable": best.memtable,
            "ops_per_cpu_second": best.ops_per_cpu_second,
            "speedup_vs_baseline": best.speedup_vs_baseline,
        },
        "baseline_ops_per_cpu_second": PRE_PR_BASELINE_OPS_PER_CPU_SECOND,
    }
    default = blocks.get("skiplist")
    if default is not None:
        metrics["default"] = {
            "memtable": "skiplist",
            "ops_per_cpu_second": default["ops_per_cpu_second"],
            "speedup_vs_baseline": default["speedup_vs_baseline"],
        }
    if phases:
        metrics["phases"] = phases
    return new_report("profile", config, metrics)


def profile_compare_rules(baseline: BenchReport, tolerance: float):
    """The perf-gate rules ``repro report --compare`` applies to BENCH_10.

    CPU rates move with the host machine, so the effective tolerance is
    floored at 50%: cross-machine drift passes, while a genuine hot-path
    regression (the planted self-test burns >3x) still fails loudly.
    """
    from repro.obs.report import CompareRule

    slack = max(tolerance, 0.5)
    rules = [CompareRule("best.ops_per_cpu_second", "higher", slack)]
    for kind in baseline.metrics.get("memtables", {}):
        rules.append(
            CompareRule(
                f"memtables.{kind}.ops_per_cpu_second", "higher", slack
            )
        )
    return rules
