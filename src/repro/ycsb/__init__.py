"""YCSB re-implementation (Section 5.1).

The paper generates load with the Yahoo! Cloud Serving Benchmark [11]:
synthetic workloads over a keyspace with uniform or Zipfian request
distributions and configurable operation mixes.  This package provides
the same generator surface — request distributions (including YCSB's
scrambled Zipfian with its default parameters), the standard A-F workload
mixes, and a closed-loop runner that measures latency and throughput in
virtual time.
"""

from repro.ycsb.distributions import (
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.ycsb.generator import Operation, OperationGenerator, OpKind
from repro.ycsb.metrics import (
    BatchStats,
    BucketedHistogram,
    LatencyStats,
    Timeseries,
)
from repro.ycsb.open_loop import OpenLoopResult, run_open_loop
from repro.ycsb.profile import (
    PRE_PR_BASELINE_OPS_PER_CPU_SECOND,
    ProfileResult,
    memtable_microbench,
    profile_memtables,
    profile_phases,
    profile_report,
    profile_workload,
)
from repro.ycsb.sessions import (
    SessionsResult,
    commit_queues,
    logical_logs,
    run_sessions,
)
from repro.ycsb.runner import (
    RunResult,
    execute_batch,
    load_phase,
    run_batched_workload,
    run_workload,
)
from repro.ycsb.trace import (
    read_trace,
    record_workload_trace,
    replay_trace,
    write_trace,
)
from repro.ycsb.stability import (
    STABILITY_MATRIX,
    StabilityConfig,
    StabilityResult,
    default_configs,
    run_stability,
    run_stability_matrix,
    stability_report,
)
from repro.ycsb.workload import WorkloadSpec, standard_workload

__all__ = [
    "BatchStats",
    "BucketedHistogram",
    "LatencyStats",
    "LatestChooser",
    "OpenLoopResult",
    "Operation",
    "OperationGenerator",
    "OpKind",
    "PRE_PR_BASELINE_OPS_PER_CPU_SECOND",
    "ProfileResult",
    "memtable_microbench",
    "profile_memtables",
    "profile_phases",
    "profile_report",
    "profile_workload",
    "RunResult",
    "run_open_loop",
    "run_sessions",
    "run_stability",
    "run_stability_matrix",
    "SessionsResult",
    "ScrambledZipfianChooser",
    "STABILITY_MATRIX",
    "StabilityConfig",
    "StabilityResult",
    "commit_queues",
    "default_configs",
    "logical_logs",
    "stability_report",
    "Timeseries",
    "UniformChooser",
    "WorkloadSpec",
    "ZipfianChooser",
    "execute_batch",
    "load_phase",
    "read_trace",
    "record_workload_trace",
    "replay_trace",
    "run_batched_workload",
    "run_workload",
    "standard_workload",
    "write_trace",
]
