"""Open-loop (throttled) workload execution.

The paper's measurements run under continuous overload, and note that
"throttling the threads, as would be done in production, would reduce
the latencies" (Section 5.1).  The open-loop runner models production:
operations *arrive* at a fixed offered rate (deterministic or Poisson)
and queue for the storage engine; an operation's latency is queueing
delay plus service time.  Sweeping the offered rate produces the
classic latency-vs-load hockey stick, with the knee at the engine's
closed-loop capacity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.interface import KVEngine
from repro.obs.timeline import WindowedTimeline
from repro.ycsb.generator import OperationGenerator
from repro.ycsb.metrics import LatencyStats
from repro.ycsb.runner import execute
from repro.ycsb.workload import WorkloadSpec


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run."""

    engine: str
    offered_rate: float
    operations: int
    latency: LatencyStats
    completed_in: float
    """Virtual seconds from first arrival to last completion."""
    backlog_seconds: float
    """How far completion lagged the final arrival (>0 under overload)."""
    arrival_window: float = 0.0
    """Virtual seconds from first to last arrival (the offered-load span)."""
    completed_in_window: int = 0
    """Operations whose completion landed inside the arrival window."""
    timeline: list[dict[str, float]] = field(default_factory=list)
    """Per-window latency percentile rows (populated when
    :func:`run_open_loop` was given ``window_seconds``), from the shared
    :class:`~repro.obs.timeline.WindowedTimeline`."""

    @property
    def saturated(self) -> bool:
        """True when the engine could not keep up with the offered rate."""
        if self.operations == 0:
            return False
        return self.backlog_seconds > 5.0 / self.offered_rate

    @property
    def achieved_rate(self) -> float:
        """Completions per second *while load was offered*.

        Measured over the arrival window, not first-arrival-to-last-
        completion: a trailing stall after the final arrival (say, a
        merge the last write triggered) extends ``completed_in`` but
        says nothing about how fast the engine absorbed the offered
        rate — dividing by it made a keeping-up engine look saturated.
        Falls back to the old ratio when the window is degenerate
        (zero or one arrival).
        """
        if self.arrival_window > 0:
            return self.completed_in_window / self.arrival_window
        if self.completed_in <= 0:
            return 0.0
        return self.operations / self.completed_in


def run_open_loop(
    engine: KVEngine,
    spec: WorkloadSpec,
    offered_rate: float,
    seed: int = 0,
    poisson: bool = False,
    window_seconds: float | None = None,
) -> OpenLoopResult:
    """Run a workload with arrivals at ``offered_rate`` ops/second.

    Args:
        offered_rate: arrival rate in operations per virtual second.
        poisson: exponential inter-arrival times instead of a fixed
            interval (deterministic arrivals model a paced load
            generator; Poisson models independent clients).
        window_seconds: when given, also collect a per-window latency
            percentile timeline (the shared
            :class:`~repro.obs.timeline.WindowedTimeline` rows).
    """
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be positive, got {offered_rate}")
    generator = OperationGenerator(spec, seed=seed)
    rng = random.Random(seed + 7)
    clock = engine.clock
    stats = LatencyStats()
    timeline = (
        WindowedTimeline(window_seconds, base=clock.now)
        if window_seconds
        else None
    )
    first_arrival: float | None = None
    arrival = clock.now
    interval = 1.0 / offered_rate
    operations = 0
    completions: list[float] = []
    for op in generator.operations():
        arrival += rng.expovariate(offered_rate) if poisson else interval
        if first_arrival is None:
            first_arrival = arrival
        # Idle until the next arrival.  With background merges the merge
        # workers keep running through this gap — their timelines are
        # ahead of the clock — so idle periods let merges catch up for
        # free, as on the paper's multi-disk hardware.
        clock.advance_to(arrival)
        execute(engine, op)
        stats.record(clock.now - arrival)
        if timeline is not None:
            timeline.record(arrival, "latency", clock.now - arrival)
        completions.append(clock.now)
        operations += 1
    last_arrival = arrival
    completed_in = clock.now - (first_arrival or clock.now)
    backlog = max(0.0, clock.now - last_arrival)
    window = last_arrival - (first_arrival if first_arrival is not None else last_arrival)
    in_window = sum(1 for done in completions if done <= last_arrival)
    return OpenLoopResult(
        engine=engine.name,
        offered_rate=offered_rate,
        operations=operations,
        latency=stats,
        completed_in=completed_in,
        backlog_seconds=backlog,
        arrival_window=window,
        completed_in_window=in_window,
        timeline=timeline.rows() if timeline is not None else [],
    )
