"""The performance-stability bench (``repro stability``, BENCH_9).

bLSM's central claim is *bounded* write latency, not peak throughput —
and, as *On Performance Stability in LSM-based Storage Systems* (Luo &
Carey) shows, the phenomena that decide it (write stalls, merge
backpressure, p99.9 variance) only appear in latency-over-*time*
timelines, never in end-of-run aggregates.  This module measures the
claim the way production systems do: it drives the open-loop sessions
runner (:func:`repro.ycsb.sessions.run_sessions`) for an extended
simulated duration against each configuration of a scheduler/policy
matrix, sampling per-window p50/p99/p99.9 write latency, queueing
delay, commit-queue depth, write-stall and merge-backpressure counters
into time-series.

The matrix reproduces the paper's contrast directly:

* ``spring_gear`` — the paper's scheduler: proportional backpressure
  spreads merge work across every write, so the windowed p99.9 stays
  near the per-tick bound.
* ``gear`` — progress-coupled pacing without the spring (Section 4.1).
* ``unthrottled`` — the naive base-LSM scheduler: merges run only when
  C0 fills and the unlucky write absorbs the whole cascade, producing
  the periodic latency spikes of the paper's Figure 7 (and Luo &
  Carey's stall plots).
* ``leveled`` / ``tiered`` — the PR 6 compaction policies under the
  spring-gear pacer, placing the design space on the same timeline.

Results assemble into the shared :class:`~repro.obs.report.BenchReport`
envelope (``repro stability --json BENCH_9.json``); the headline
metric per configuration is the **p99.9 write-latency ceiling** — the
worst windowed p99.9 — which for ``spring_gear`` must sit strictly
below ``unthrottled``'s (the bounded-latency claim as a gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.baselines.interface import KVEngine
from repro.obs.report import BenchReport, new_report
from repro.obs.timeline import percentile
from repro.ycsb.sessions import SessionsResult, run_sessions
from repro.ycsb.workload import WorkloadSpec

__all__ = [
    "STABILITY_MATRIX",
    "StabilityConfig",
    "StabilityResult",
    "default_configs",
    "run_stability",
    "run_stability_matrix",
    "stability_report",
]


@dataclass(frozen=True)
class StabilityConfig:
    """One cell of the scheduler/policy matrix."""

    name: str
    engine: str = "blsm"
    scheduler: str = "spring_gear"
    throttled: bool = True
    """Whether the scheduler paces merges (False marks the baseline the
    bounded-latency gate compares against)."""


#: The named matrix ``repro stability --configs`` selects from.
STABILITY_MATRIX: dict[str, StabilityConfig] = {
    config.name: config
    for config in (
        StabilityConfig("spring_gear", "blsm", "spring_gear"),
        StabilityConfig("gear", "blsm", "gear"),
        StabilityConfig("unthrottled", "blsm", "naive", throttled=False),
        StabilityConfig("leveled", "leveled", "spring_gear"),
        StabilityConfig("tiered", "tiered", "spring_gear"),
    )
}


def default_configs() -> tuple[StabilityConfig, ...]:
    """The full stability matrix, in presentation order."""
    return tuple(STABILITY_MATRIX.values())


@dataclass
class StabilityResult:
    """One configuration's stability run, timeline included."""

    config: StabilityConfig
    sessions: SessionsResult
    timeline: list[dict[str, float]]
    """Per-window rows merging latency percentiles (``write_p999``,
    ``queue_p99``, ...) with stall/backpressure deltas for the window."""
    stall_count: float
    stall_seconds: float
    backpressure_engagements: float
    write_p999_ceiling: float
    """Max over windows of the window's write-latency p99.9 — the
    stability headline (small = bounded write latency)."""
    queue_p999_ceiling: float
    max_window_stall_seconds: float

    def summary(self) -> dict[str, Any]:
        """The config's metric block in the BENCH_9 report."""
        windows = [
            row.get("write_p999", 0.0)
            for row in self.timeline
            if row.get("write_n", 0.0) > 0
        ]
        return {
            "engine": self.sessions.engine,
            "scheduler": self.config.scheduler,
            "throttled": self.config.throttled,
            "operations": self.sessions.operations,
            "achieved_rate": self.sessions.achieved_rate,
            "backlog_seconds": self.sessions.backlog_seconds,
            "write": self.sessions.ack_latency.summary(),
            "queueing": self.sessions.queueing.summary(),
            "write_p999_ceiling": self.write_p999_ceiling,
            "write_p999_median_window": percentile(windows, 50.0),
            "queue_p999_ceiling": self.queue_p999_ceiling,
            "stalls": {
                "count": self.stall_count,
                "seconds": self.stall_seconds,
                "max_window_seconds": self.max_window_stall_seconds,
            },
            "backpressure_engagements": self.backpressure_engagements,
            "timeline": self.timeline,
        }


def _metric_probe(engine: KVEngine):
    """A cumulative stall/backpressure sampler for ``run_sessions``.

    Reads the PR 1 metrics registry: the write-stall counter and
    stall-seconds histogram the tree's ``force_drain`` path maintains,
    plus the spring scheduler's pressure gauge and engagement counter.
    Engines without a runtime (none in the stability matrix) sample
    zeros rather than failing.
    """
    runtime = getattr(engine, "runtime", None)

    def probe() -> dict[str, float]:
        if runtime is None:
            return {}
        metrics = runtime.metrics
        stall_hist = metrics.get("writes.stall_seconds")
        return {
            "stall_count": metrics.value("writes.stalls", 0.0),
            "stall_seconds": (
                float(stall_hist.sum) if stall_hist is not None else 0.0
            ),
            "backpressure_engagements": metrics.value(
                "scheduler.backpressure_engagements", 0.0
            ),
            "pressure": metrics.value("scheduler.pressure", 0.0),
        }

    return probe


def _stall_windows(
    probes: Sequence[dict[str, float]],
) -> list[dict[str, float]]:
    """Difference consecutive cumulative probes into per-window deltas.

    Probe ``i`` holds counters as of its boundary time; the row at
    ``t = probes[i]["t"]`` covers activity until the next probe.
    """
    rows: list[dict[str, float]] = []
    for before, after in zip(probes, probes[1:]):
        rows.append(
            {
                "t": before["t"],
                "stall_count": after.get("stall_count", 0.0)
                - before.get("stall_count", 0.0),
                "stall_seconds": after.get("stall_seconds", 0.0)
                - before.get("stall_seconds", 0.0),
                "backpressure_engagements": after.get(
                    "backpressure_engagements", 0.0
                )
                - before.get("backpressure_engagements", 0.0),
                "pressure": after.get("pressure", 0.0),
                "queue_depth": after.get("queue_depth", 0.0),
            }
        )
    return rows


def run_stability(
    config: StabilityConfig,
    duration_seconds: float = 4.0,
    rate: float = 2000.0,
    sessions: int = 8,
    arrival: str = "poisson",
    records: int = 600,
    value_bytes: int = 100,
    read_proportion: float = 0.1,
    c0_bytes: int = 48 * 1024,
    cache_pages: int = 32,
    windows: int = 24,
    seed: int = 0,
) -> StabilityResult:
    """Run one matrix cell for ``duration_seconds`` of offered load.

    Builds the engine through the registry (async durability — the
    write path under test is merge scheduling, not log forcing), loads
    ``records`` keys, then offers ``rate`` ops/s of a write-heavy mix
    through N open-loop sessions, probing stall counters at every
    window boundary.
    """
    from repro.engines import build_engine
    from repro.ycsb.runner import load_phase

    ops = max(1, int(duration_seconds * rate))
    spec = WorkloadSpec(
        record_count=records,
        operation_count=ops,
        read_proportion=read_proportion,
        blind_write_proportion=1.0 - read_proportion,
        request_distribution="uniform",
        value_bytes=value_bytes,
    )
    engine = build_engine(
        config.engine,
        c0_bytes=c0_bytes,
        cache_pages=cache_pages,
        scheduler=config.scheduler,
        durability="async",
        seed=seed,
    )
    try:
        load_phase(engine, spec, seed=seed)
        result = run_sessions(
            engine,
            spec,
            rate,
            sessions=sessions,
            arrival=arrival,
            seed=seed + 1,
            window_seconds=max(1e-9, duration_seconds / windows),
            probe=_metric_probe(engine),
        )
    finally:
        engine.close()

    stall_rows = _stall_windows(result.probes)
    by_t = {row["t"]: row for row in stall_rows}
    timeline: list[dict[str, float]] = []
    for row in result.timeline:
        merged = dict(row)
        stall = by_t.pop(row["t"], None)
        if stall is not None:
            merged.update(
                {key: value for key, value in stall.items() if key != "t"}
            )
        timeline.append(merged)
    # Stall windows with no arrivals (the engine mid-drain) still count.
    timeline.extend(sorted(by_t.values(), key=lambda row: row["t"]))
    timeline.sort(key=lambda row: row["t"])

    first = result.probes[0] if result.probes else {}
    last = result.probes[-1] if result.probes else {}

    def total(key: str) -> float:
        return last.get(key, 0.0) - first.get(key, 0.0)

    return StabilityResult(
        config=config,
        sessions=result,
        timeline=timeline,
        stall_count=total("stall_count"),
        stall_seconds=total("stall_seconds"),
        backpressure_engagements=total("backpressure_engagements"),
        write_p999_ceiling=max(
            (row.get("write_p999", 0.0) for row in timeline), default=0.0
        ),
        queue_p999_ceiling=max(
            (row.get("queue_p999", 0.0) for row in timeline), default=0.0
        ),
        max_window_stall_seconds=max(
            (row.get("stall_seconds", 0.0) for row in timeline), default=0.0
        ),
    )


def run_stability_matrix(
    configs: Sequence[StabilityConfig],
    progress=None,
    **kwargs: Any,
) -> list[StabilityResult]:
    """Run every requested matrix cell (same load, fresh engine each)."""
    results: list[StabilityResult] = []
    for config in configs:
        if progress is not None:
            progress(
                f"  stability: {config.name} "
                f"(engine={config.engine}, scheduler={config.scheduler})"
            )
        results.append(run_stability(config, **kwargs))
    return results


def stability_report(
    results: Sequence[StabilityResult], config: dict[str, Any]
) -> BenchReport:
    """Assemble matrix results into the BENCH_9 envelope."""
    from repro.analysis.stability import bounded_latency_block

    metrics: dict[str, Any] = {
        "configs": {
            result.config.name: result.summary() for result in results
        },
    }
    bounded = bounded_latency_block(results)
    if bounded is not None:
        metrics["bounded_latency"] = bounded
    return new_report("stability", config, metrics)
