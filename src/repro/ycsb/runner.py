"""Closed-loop workload execution against any engine.

The paper drives every system with unthrottled YCSB worker threads so
the storage device is continuously saturated (Section 5.1: "running the
systems under continuous overload reliably reproduces throughput
collapses").  On the virtual clock the equivalent is a closed loop: each
operation's latency is the clock advance it caused (device time, merge
work and backpressure included), and throughput is operations over
elapsed virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.interface import KVEngine, WriteBatch
from repro.ycsb.generator import Operation, OperationGenerator, OpKind
from repro.ycsb.metrics import BatchStats, LatencyStats, Timeseries
from repro.ycsb.workload import WorkloadSpec


@dataclass
class RunResult:
    """Everything one measured phase produced."""

    engine: str
    operations: int
    elapsed_seconds: float
    latencies: dict[OpKind, LatencyStats]
    timeseries: Timeseries | None
    io: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    """Engine-wide :class:`MetricsRegistry` snapshot taken at phase end."""

    batch: BatchStats | None = None
    """Batch-level accounting when the phase ran batched, else ``None``."""

    @property
    def throughput(self) -> float:
        """Operations per virtual second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds

    def all_latencies(self) -> LatencyStats:
        """Latency stats pooled across operation kinds."""
        pooled = LatencyStats()
        for stats in self.latencies.values():
            pooled.merge(stats)
        return pooled

    def summary(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "operations": self.operations,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput": self.throughput,
            "latency": self.all_latencies().summary(),
        }


def _latency_observer(engine: KVEngine):
    """Record per-kind op latencies into ``ycsb.latency.{kind}`` histograms.

    Engines without a runtime (external/stub engines) get a no-op, so the
    runner never requires observability to function.
    """
    runtime = engine.runtime
    if runtime is None:
        return lambda kind, latency: None
    histograms: dict[OpKind, Any] = {}

    def observe(kind: OpKind, latency: float) -> None:
        histogram = histograms.get(kind)
        if histogram is None:
            histogram = runtime.metrics.histogram(
                f"ycsb.latency.{kind.name.lower()}"
            )
            histograms[kind] = histogram
        histogram.observe(latency)

    return observe


def execute(engine: KVEngine, op: Operation) -> None:
    """Run one generated operation against an engine."""
    if op.kind is OpKind.READ:
        engine.get(op.key)
    elif op.kind is OpKind.BLIND_WRITE:
        assert op.value is not None
        engine.put(op.key, op.value)
    elif op.kind in (OpKind.UPDATE, OpKind.RMW):
        assert op.value is not None
        new_value = op.value
        engine.read_modify_write(op.key, lambda _old: new_value)
    elif op.kind is OpKind.INSERT:
        assert op.value is not None
        engine.put(op.key, op.value)
    elif op.kind is OpKind.SCAN:
        consumed = 0
        for _ in engine.scan(op.key, limit=op.scan_length):
            consumed += 1
    elif op.kind is OpKind.DELETE:
        engine.delete(op.key)
    else:  # pragma: no cover - exhaustive
        raise ValueError(f"unknown operation kind {op.kind!r}")


def execute_batch(engine: KVEngine, batch: list[Operation]) -> None:
    """Run one client batch through the engine's multi-key surface.

    Consecutive READs coalesce into one :meth:`KVEngine.multi_get`;
    consecutive blind writes, inserts and deletes coalesce into one
    :class:`WriteBatch`.  Coalescing never crosses a run boundary, so a
    read issued after a write to the same key still observes it.
    UPDATE/RMW (read-dependent) and SCAN stay single calls.
    """
    reads: list[bytes] = []
    writes = WriteBatch()

    def drain() -> None:
        nonlocal writes
        if reads:
            engine.multi_get(list(reads))
            reads.clear()
        if writes:
            engine.apply_batch(writes)
            writes = WriteBatch()

    for op in batch:
        if op.kind is OpKind.READ:
            if writes:
                drain()
            reads.append(op.key)
        elif op.kind in (OpKind.BLIND_WRITE, OpKind.INSERT):
            if reads:
                drain()
            assert op.value is not None
            writes.put(op.key, op.value)
        elif op.kind is OpKind.DELETE:
            if reads:
                drain()
            writes.delete(op.key)
        else:
            drain()
            execute(engine, op)
    drain()


def run_batched_workload(
    engine: KVEngine,
    spec: WorkloadSpec,
    seed: int = 0,
    batch_size: int = 8,
    timeseries_window: float | None = None,
) -> RunResult:
    """Run the measured phase in client batches of ``batch_size``.

    The batched analogue of :func:`run_workload`: a closed loop over
    *batches* instead of single operations.  Every operation in a batch
    completes when the batch does, so each op records the whole batch's
    clock advance as its latency; throughput still counts individual
    operations.  On a sharded engine a batch fans out and costs the max
    of the per-shard device time — the amortization this runner exists
    to measure.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    generator = OperationGenerator(spec, seed=seed)
    latencies: dict[OpKind, LatencyStats] = {}
    batch_stats = BatchStats()
    observe = _latency_observer(engine)
    series = (
        Timeseries(timeseries_window) if timeseries_window is not None else None
    )
    start = engine.clock.now
    io_before = engine.io_summary()
    operations = 0
    for batch in generator.batches(batch_size):
        issued = engine.clock.now
        execute_batch(engine, batch)
        latency = engine.clock.now - issued
        batch_stats.record(len(batch), latency)
        for op in batch:
            latencies.setdefault(op.kind, LatencyStats()).record(latency)
            observe(op.kind, latency)
            if series is not None:
                series.record(issued - start, latency)
        operations += len(batch)
    elapsed = engine.clock.now - start
    if series is not None:
        series.end_time = elapsed
    return RunResult(
        engine=engine.name,
        operations=operations,
        elapsed_seconds=elapsed,
        latencies=latencies,
        timeseries=series,
        io=_io_delta(io_before, engine.io_summary()),
        metrics=engine.metrics(),
        batch=batch_stats,
    )


def load_phase(
    engine: KVEngine,
    spec: WorkloadSpec,
    seed: int = 0,
    timeseries_window: float | None = None,
    use_bulk_load: bool = False,
    batch_size: int = 1,
) -> RunResult:
    """Insert ``spec.record_count`` keys (Section 5.2's load).

    Args:
        use_bulk_load: use the engine's sorted bulk-load path if it has
            one (InnoDB's pre-sorted load); requires
            ``spec.ordered_inserts``.
        batch_size: when > 1, group inserts into :class:`WriteBatch`
            groups of this size (ignored when the spec checks existence
            on insert — that read-dependent path stays per-key).
        timeseries_window: when set, collect windowed throughput for
            Figure 7 style plots.
    """
    generator = OperationGenerator(spec, seed=seed)
    stats = LatencyStats()
    batch_stats: BatchStats | None = None
    observe = _latency_observer(engine)
    series = (
        Timeseries(timeseries_window) if timeseries_window is not None else None
    )
    start = engine.clock.now
    io_before = engine.io_summary()
    if use_bulk_load:
        bulk = getattr(engine, "bulk_load", None)
        if bulk is None:
            raise ValueError(f"{engine.name} has no bulk-load path")
        value = bytes(spec.value_bytes)
        before = engine.clock.now
        count = bulk((key, value) for key in sorted(generator.load_keys()))
        per_op = (engine.clock.now - before) / max(1, count)
        stats.record(per_op)
        observe(OpKind.INSERT, per_op)
    elif batch_size > 1 and not spec.check_exists_on_insert:
        import random as _random

        value_rng = _random.Random(seed + 1)
        batch_stats = BatchStats()
        chunk: list[bytes] = []

        def flush() -> None:
            batch = WriteBatch()
            for key in chunk:
                value = bytes([value_rng.randrange(256)]) * spec.value_bytes
                batch.put(key, value)
            before = engine.clock.now
            engine.apply_batch(batch)
            latency = engine.clock.now - before
            batch_stats.record(len(chunk), latency)
            for _ in chunk:
                stats.record(latency)
                observe(OpKind.INSERT, latency)
                if series is not None:
                    series.record(before - start, latency)
            chunk.clear()

        for key in generator.load_keys():
            chunk.append(key)
            if len(chunk) == batch_size:
                flush()
        if chunk:
            flush()
    else:
        import random as _random

        value_rng = _random.Random(seed + 1)
        for key in generator.load_keys():
            value = bytes([value_rng.randrange(256)]) * spec.value_bytes
            before = engine.clock.now
            if spec.check_exists_on_insert:
                engine.insert_if_not_exists(key, value)
            else:
                engine.put(key, value)
            latency = engine.clock.now - before
            stats.record(latency)
            observe(OpKind.INSERT, latency)
            if series is not None:
                series.record(before - start, latency)
    elapsed = engine.clock.now - start
    if series is not None:
        series.end_time = elapsed
    return RunResult(
        engine=engine.name,
        operations=spec.record_count,
        elapsed_seconds=elapsed,
        latencies={OpKind.INSERT: stats},
        timeseries=series,
        io=_io_delta(io_before, engine.io_summary()),
        metrics=engine.metrics(),
        batch=batch_stats,
    )


def run_workload(
    engine: KVEngine,
    spec: WorkloadSpec,
    seed: int = 0,
    timeseries_window: float | None = None,
    concurrency: int = 1,
) -> RunResult:
    """Run the measured phase of a workload (no load).

    Args:
        concurrency: number of closed-loop workers.  The device is a
            serial resource, so extra workers do not add throughput —
            they add *queueing*: each worker issues its next operation
            the moment its previous one completes, and with ``N``
            workers an operation waits behind up to ``N - 1`` others.
            The paper runs 128 unthrottled YCSB threads and reports
            latencies "in the 100's of milliseconds across all three
            systems" (Section 5.1); this reproduces that regime.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    generator = OperationGenerator(spec, seed=seed)
    latencies: dict[OpKind, LatencyStats] = {}
    observe = _latency_observer(engine)
    series = (
        Timeseries(timeseries_window) if timeseries_window is not None else None
    )
    start = engine.clock.now
    io_before = engine.io_summary()
    operations = 0
    # Completion times of the last `concurrency` operations: with N
    # closed-loop workers, operation i was issued when operation i-N
    # completed, so its latency spans that gap plus its own service.
    completions: list[float] = []
    for op in generator.operations():
        issued = (
            completions[-concurrency]
            if len(completions) >= concurrency
            else start
        )
        execute(engine, op)
        now = engine.clock.now
        completions.append(now)
        latency = now - issued
        latencies.setdefault(op.kind, LatencyStats()).record(latency)
        observe(op.kind, latency)
        if series is not None:
            series.record(issued - start, latency)
        operations += 1
    elapsed = engine.clock.now - start
    if series is not None:
        series.end_time = elapsed
    return RunResult(
        engine=engine.name,
        operations=operations,
        elapsed_seconds=elapsed,
        latencies=latencies,
        timeseries=series,
        io=_io_delta(io_before, engine.io_summary()),
        metrics=engine.metrics(),
    )


def _io_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    delta: dict[str, Any] = {}
    for key, value in after.items():
        if key.endswith(("_utilization", "_rate")):
            delta[key] = value  # ratios are snapshots, not counters
        elif isinstance(value, (int, float)) and key in before:
            delta[key] = value - before[key]
        else:
            delta[key] = value
    return delta
