"""How many levels should an LSM-Tree have? (Section 2.3.1's optimization)

The base LSM analysis: with ``N`` on-disk levels whose sizes grow by a
common ratio ``R``, holding the indexed data size fixed requires
``R = (|data| / |C0|)^(1/N)``, and the amortized write cost is
proportional to ``N * R`` (each update crosses every level, paying ~R
per crossing) while worst-case reads and scans touch all ``N`` levels.

The paper picks N = 2 on-disk levels plus Bloom filters; LevelDB and
fractional-cascading trees pick large ``N`` with fixed ``R``.  This
module quantifies the trade-off — the write-optimized regime grows
logarithmically many levels, the read-optimized regime keeps levels
constant — and backs the paper's deferred "two-level vs multi-level"
comparison (Section 5.2) with the underlying arithmetic.
"""

from __future__ import annotations

import math


def level_ratio(data_over_c0: float, levels: int) -> float:
    """The size ratio R between adjacent levels (Section 2.3.1)."""
    if levels <= 0:
        raise ValueError(f"levels must be positive, got {levels}")
    if data_over_c0 < 1.0:
        raise ValueError(
            f"data_over_c0 must be >= 1, got {data_over_c0}"
        )
    return data_over_c0 ** (1.0 / levels)


def write_amplification(data_over_c0: float, levels: int) -> float:
    """Amortized sequential I/O per written byte with ``levels`` levels.

    Each byte crosses every level once; each crossing re-copies, on
    average, half the destination level per source-level volume — ~R/2
    reads plus the write, doubled for read-back: ~R per level crossing
    in each direction, i.e. ``levels * (1 + R)`` total transfers.
    """
    r = level_ratio(data_over_c0, levels)
    return levels * (1.0 + r)


def read_amplification(levels: int, bloom_false_positive_rate: float | None) -> float:
    """Worst-case seeks per point lookup.

    Without filters every level is probed; with filters only the true
    location plus expected false positives.
    """
    if bloom_false_positive_rate is None:
        return float(levels)
    return 1.0 + (levels - 1) * bloom_false_positive_rate


def scan_amplification(levels: int) -> float:
    """Seeks per short scan: Bloom filters do not help (Section 3.3)."""
    return float(levels)


def optimal_levels_for_write(data_over_c0: float) -> int:
    """The write-optimal level count: minimize ``N * (1 + R)``.

    Differentiating N(1 + x^(1/N)) gives the classic ~ln(data/C0)
    optimum (R ≈ e); returned as the best integer.
    """
    best_levels, best_cost = 1, write_amplification(data_over_c0, 1)
    for levels in range(2, 64):
        cost = write_amplification(data_over_c0, levels)
        if cost < best_cost:
            best_levels, best_cost = levels, cost
        if level_ratio(data_over_c0, levels) < math.e / 2:
            break
    return best_levels


def tradeoff_table(
    data_over_c0: float, max_levels: int = 6
) -> list[dict[str, float]]:
    """Rows of (levels, R, write amp, read amp with/without Bloom, scan
    seeks) — the design space the paper's Table 1 summarizes."""
    rows = []
    for levels in range(1, max_levels + 1):
        rows.append(
            {
                "levels": levels,
                "r": level_ratio(data_over_c0, levels),
                "write_amp": write_amplification(data_over_c0, levels),
                "read_amp_bloom": read_amplification(levels, 0.01),
                "read_amp_no_bloom": read_amplification(levels, None),
                "scan_seeks": scan_amplification(levels),
            }
        )
    return rows
