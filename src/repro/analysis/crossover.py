"""The update-in-place vs log-structured crossover (Section 2, Conclusion).

"As object sizes increase, update-in-place techniques begin to
outperform log structured techniques.  Increasing the relative cost of
random I/O increases the object size that determines the 'cross over'
point" (Section 2).  The conclusion repeats the caveat: "as the size of
objects increase, the sequential costs dominate and update-in-place
techniques provide superior performance."

The arithmetic: an update-in-place write costs two random accesses plus
one object transfer; a log-structured write costs ``WA`` object
transfers (its write amplification) at sequential bandwidth.  They break
even at

    object_size* = 2 * access_time * bandwidth / (WA - 1)

Bigger seeks (slower devices) push the crossover up — the paper's
"these trends make log structured techniques more attractive over
time"; bigger write amplification (bigger data:RAM ratios) pulls it
down.
"""

from __future__ import annotations

from repro.sim.disk import DiskModel


def update_in_place_write_seconds(
    object_bytes: int, model: DiskModel
) -> float:
    """Cost of a B-Tree style update: read the page, write it back."""
    return (
        model.read_access_seconds
        + model.write_access_seconds
        + 2 * object_bytes / model.seq_write_bandwidth
    )


def log_structured_write_seconds(
    object_bytes: int, model: DiskModel, write_amplification: float
) -> float:
    """Amortized cost of a log-structured write: WA sequential copies."""
    if write_amplification < 1.0:
        raise ValueError(
            f"write_amplification must be >= 1, got {write_amplification}"
        )
    return write_amplification * object_bytes / model.seq_write_bandwidth


def crossover_object_bytes(
    model: DiskModel, write_amplification: float
) -> float:
    """Object size above which update-in-place writes win.

    Solves ``update_in_place == log_structured`` for the object size;
    infinite when the LSM's amplification never exceeds the B-Tree's
    effective two copies.
    """
    extra_copies = write_amplification - 2.0
    if extra_copies <= 0:
        return float("inf")
    access = model.read_access_seconds + model.write_access_seconds
    return access * model.seq_write_bandwidth / extra_copies


def policy_crossover_table(
    data_over_base: float = 64.0,
    ratio: float = 4.0,
    fanout: int = 4,
    policies: list[str] | None = None,
) -> list[tuple[str, float, dict[str, float]]]:
    """Crossover sizes per device and *compaction policy*.

    Generalizes :func:`crossover_table` away from hand-picked write
    amplifications: each policy's amplification comes from the shared
    design-space model (:mod:`repro.analysis.amplification`), so the
    table answers "above what object size does a B-Tree beat *this*
    policy on *this* device?" for the whole design space at once.
    :func:`crossover_object_bytes` counts object *copies*; the policy
    model counts read+write I/O bytes, so copies are half of it.

    Returns rows of (device name, access time, {policy: crossover bytes}).
    """
    from repro.analysis.amplification import (
        geometric_levels,
        policy_write_amplification,
    )
    from repro.core.compaction.policy import POLICY_NAMES

    names = list(policies) if policies else list(POLICY_NAMES)
    levels = geometric_levels(data_over_base, ratio)
    rows: list[tuple[str, float, dict[str, float]]] = []
    for model in (DiskModel.single_hdd(), DiskModel.hdd(), DiskModel.ssd()):
        crossovers = {
            name: crossover_object_bytes(
                model,
                policy_write_amplification(
                    name, 2 if name == "blsm3" else levels, ratio, fanout
                )
                / 2.0,
            )
            for name in names
        }
        rows.append(
            (
                model.name,
                model.read_access_seconds + model.write_access_seconds,
                crossovers,
            )
        )
    return rows


def crossover_table(
    write_amplifications: list[float] | None = None,
) -> list[tuple[str, float, list[float]]]:
    """Crossover sizes per device and LSM write amplification.

    Returns rows of (device name, access time, [crossover bytes per
    amplification]).
    """
    if write_amplifications is None:
        write_amplifications = [4.0, 8.0, 16.0, 32.0]
    rows = []
    for model in (DiskModel.single_hdd(), DiskModel.hdd(), DiskModel.ssd()):
        rows.append(
            (
                model.name,
                model.read_access_seconds + model.write_access_seconds,
                [
                    crossover_object_bytes(model, amplification)
                    for amplification in write_amplifications
                ],
            )
        )
    return rows
