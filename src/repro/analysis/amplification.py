"""Read amplification models: Bloom filters vs fractional cascading.

Figure 2 plots worst-case read amplification against data size (in
multiples of available RAM) for two designs:

* a three-level LSM-Tree whose on-disk components carry Bloom filters
  (the paper's design): point lookups cost at most ``1 + N * fpr`` seeks
  — about 1.03 for three on-disk components at a 1 % false-positive rate
  — independent of data size;

* fractional-cascading trees (TokuDB/COLA style) with a fixed fanout R:
  the number of levels grows logarithmically with data size, lookups
  visit a run of data pages at every on-disk level, and no choice of R
  is competitive — driving amplification to 1 requires an R so large the
  tree degenerates to a single component and O(n) write amplification
  (Section 3.1).

The cascading model charges one seek per on-disk level (the cascade
pointer lands directly in the next level's leaves, but those leaves are
on disk) and ``R/2`` pages of transfer per cascade step (the short run
of candidate pages examined at each level).
"""

from __future__ import annotations

import math

#: On-disk components a bLSM point lookup may probe (C1, C1', C2).
BLSM_DISK_COMPONENTS = 3


def cascade_levels(r: float, data_over_ram: float) -> int:
    """On-disk levels of a fractional-cascading tree with fanout ``r``.

    The top ``RAM`` worth of the tree is cached; every factor-of-``r``
    beyond that adds one on-disk level.
    """
    if r <= 1.0:
        raise ValueError(f"fanout must exceed 1, got {r}")
    if data_over_ram <= 1.0:
        return 0
    return max(1, math.ceil(math.log(data_over_ram, r)))


def cascade_read_amplification(r: float, data_over_ram: float) -> float:
    """Worst-case seeks per probe with fractional cascading."""
    return float(cascade_levels(r, data_over_ram))


def cascade_bandwidth_amplification(r: float, data_over_ram: float) -> float:
    """Pages transferred per probe with fractional cascading.

    Each cascade step examines a run of about ``r / 2`` candidate leaf
    pages in the next level (the run between two consecutive cascade
    pointers), so larger fanouts trade seeks for bandwidth.
    """
    levels = cascade_levels(r, data_over_ram)
    return levels * max(1.0, r / 2.0)


def bloom_read_amplification(
    data_over_ram: float,
    components: int = BLSM_DISK_COMPONENTS,
    false_positive_rate: float = 0.01,
) -> float:
    """Worst-case seeks per probe for the Bloom-filtered three-level tree.

    One seek for the component holding the record plus one expected seek
    per falsely-positive filter: ``1 + (components - 1) * fpr`` — 1.03
    at the paper's scenario parameters, flat in data size.
    """
    if data_over_ram <= 1.0:
        return 0.0  # everything fits in RAM
    return 1.0 + (components - 1) * false_positive_rate


def bloom_bandwidth_amplification(
    data_over_ram: float,
    components: int = BLSM_DISK_COMPONENTS,
    false_positive_rate: float = 0.01,
) -> float:
    """Pages transferred per probe with Bloom filters (one per seek)."""
    return bloom_read_amplification(data_over_ram, components, false_positive_rate)


def read_fanout(
    page_size: int, key_bytes: int, value_bytes: int, pointer_bytes: int = 8
) -> float:
    """Appendix A's read fanout: data addressed per byte of index RAM.

    ``max(page_size, key + value) / (key + pointer)`` — about 40 for
    100-byte keys and 4 KB pages.
    """
    if page_size <= 0 or key_bytes <= 0:
        raise ValueError("page_size and key_bytes must be positive")
    addressed = max(page_size, key_bytes + value_bytes)
    return addressed / (key_bytes + pointer_bytes)


def figure2_series(
    r_values: list[int] | None = None,
    max_ratio: int = 16,
    points_per_unit: int = 2,
) -> dict[str, list[tuple[float, float, float]]]:
    """The Figure 2 data: per curve, (ratio, seek amp, bandwidth amp).

    Returns a mapping from curve label (``bloom`` or ``R=k``) to its
    series over data sizes 0..``max_ratio`` multiples of RAM.
    """
    if r_values is None:
        r_values = list(range(2, 11))
    ratios = [
        i / points_per_unit for i in range(0, max_ratio * points_per_unit + 1)
    ]
    series: dict[str, list[tuple[float, float, float]]] = {"bloom": []}
    for ratio in ratios:
        series["bloom"].append(
            (
                ratio,
                bloom_read_amplification(ratio),
                bloom_bandwidth_amplification(ratio),
            )
        )
    for r in r_values:
        curve: list[tuple[float, float, float]] = []
        for ratio in ratios:
            if ratio <= 1.0:
                curve.append((ratio, 0.0, 0.0))
            else:
                curve.append(
                    (
                        ratio,
                        cascade_read_amplification(r, ratio),
                        cascade_bandwidth_amplification(r, ratio),
                    )
                )
        series[f"R={r}"] = curve
    return series
