"""Amplification models: Bloom filters, cascading, and the policy space.

Two families of models live here.  The first backs the paper's Figure 2
(Bloom filters vs fractional cascading, below).  The second generalizes
the repo's original hardcoded three-component arithmetic to the N-level
compaction design space (Sarkar et al., PAPERS.md): given a policy name,
a level count and a size ratio, :func:`policy_write_amplification`,
:func:`policy_read_amplification` and
:func:`policy_space_amplification` place it on the write/read/space
trade-off triangle, and :func:`policy_table` tabulates the whole design
space at once — the analytic twin of ``repro bench --policy all``.

Figure 2 plots worst-case read amplification against data size (in
multiples of available RAM) for two designs:

* a three-level LSM-Tree whose on-disk components carry Bloom filters
  (the paper's design): point lookups cost at most ``1 + N * fpr`` seeks
  — about 1.03 for three on-disk components at a 1 % false-positive rate
  — independent of data size;

* fractional-cascading trees (TokuDB/COLA style) with a fixed fanout R:
  the number of levels grows logarithmically with data size, lookups
  visit a run of data pages at every on-disk level, and no choice of R
  is competitive — driving amplification to 1 requires an R so large the
  tree degenerates to a single component and O(n) write amplification
  (Section 3.1).

The cascading model charges one seek per on-disk level (the cascade
pointer lands directly in the next level's leaves, but those leaves are
on disk) and ``R/2`` pages of transfer per cascade step (the short run
of candidate pages examined at each level).
"""

from __future__ import annotations

import math

#: On-disk components a bLSM point lookup may probe (C1, C1', C2).
BLSM_DISK_COMPONENTS = 3


def cascade_levels(r: float, data_over_ram: float) -> int:
    """On-disk levels of a fractional-cascading tree with fanout ``r``.

    The top ``RAM`` worth of the tree is cached; every factor-of-``r``
    beyond that adds one on-disk level.
    """
    if r <= 1.0:
        raise ValueError(f"fanout must exceed 1, got {r}")
    if data_over_ram <= 1.0:
        return 0
    return max(1, math.ceil(math.log(data_over_ram, r)))


def cascade_read_amplification(r: float, data_over_ram: float) -> float:
    """Worst-case seeks per probe with fractional cascading."""
    return float(cascade_levels(r, data_over_ram))


def cascade_bandwidth_amplification(r: float, data_over_ram: float) -> float:
    """Pages transferred per probe with fractional cascading.

    Each cascade step examines a run of about ``r / 2`` candidate leaf
    pages in the next level (the run between two consecutive cascade
    pointers), so larger fanouts trade seeks for bandwidth.
    """
    levels = cascade_levels(r, data_over_ram)
    return levels * max(1.0, r / 2.0)


def bloom_read_amplification(
    data_over_ram: float,
    components: int = BLSM_DISK_COMPONENTS,
    false_positive_rate: float = 0.01,
) -> float:
    """Worst-case seeks per probe for the Bloom-filtered three-level tree.

    One seek for the component holding the record plus one expected seek
    per falsely-positive filter: ``1 + (components - 1) * fpr`` — 1.03
    at the paper's scenario parameters, flat in data size.
    """
    if data_over_ram <= 1.0:
        return 0.0  # everything fits in RAM
    return 1.0 + (components - 1) * false_positive_rate


def bloom_bandwidth_amplification(
    data_over_ram: float,
    components: int = BLSM_DISK_COMPONENTS,
    false_positive_rate: float = 0.01,
) -> float:
    """Pages transferred per probe with Bloom filters (one per seek)."""
    return bloom_read_amplification(data_over_ram, components, false_positive_rate)


# ----------------------------------------------------------------------
# The N-level compaction design space (generalizes the 3-slot arithmetic)
# ----------------------------------------------------------------------


def geometric_levels(data_over_base: float, ratio: float) -> int:
    """On-disk levels a geometric ``base * ratio^level`` tree needs.

    ``data_over_base`` is total data over the level-1 budget; one level
    suffices while the data fits it, and every factor of ``ratio``
    beyond adds a level.
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must exceed 1, got {ratio}")
    if data_over_base <= 1.0:
        return 1
    return 1 + max(1, math.ceil(math.log(data_over_base, ratio)))


def policy_run_counts(
    policy: str, levels: int, fanout: int = 4
) -> list[int]:
    """Worst-case resident sorted runs per on-disk level.

    ``leveled`` keeps one run everywhere; ``tiered`` stacks ``fanout``
    runs per level; ``lazy-leveled`` tiers the upper levels and keeps a
    single-run bottom; ``blsm3`` is the paper's fixed layout — C1 and
    C1' share the first on-disk level, C2 is the second.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if policy == "blsm3":
        return [2, 1]
    if policy == "leveled":
        return [1] * levels
    if policy == "tiered":
        return [fanout] * levels
    if policy == "lazy-leveled":
        return [fanout] * (levels - 1) + [1]
    raise ValueError(f"unknown compaction policy {policy!r}")


def policy_write_amplification(
    policy: str, levels: int, ratio: float, fanout: int = 4
) -> float:
    """Merge I/O (read + write bytes) per ingested byte, per policy.

    Delegates to the policy objects' own
    ``estimated_write_amplification`` so the analytic tables, the
    spring-and-gear scheduler and the bench sweep share one formula;
    ``blsm3`` uses the leveled formula over its two on-disk levels.
    """
    from repro.core.compaction.policy import make_policy

    if policy == "blsm3":
        return make_policy("leveled").estimated_write_amplification(2, ratio)
    return make_policy(
        policy, fanout=fanout
    ).estimated_write_amplification(levels, ratio)


def per_level_write_amplification(
    policy: str, levels: int, ratio: float, fanout: int = 4
) -> list[float]:
    """The per-level breakdown :func:`policy_write_amplification` sums.

    Each entry is the merge I/O a byte pays to cross (or settle in) one
    level: ``2 * (1 + ratio)`` for a leveled crossing (the byte is
    rewritten together with the ~``ratio``-times-larger resident run),
    ``2.0`` for a tiered crossing (copied once, never rewritten).
    """
    counts = policy_run_counts(policy, levels, fanout)
    leveled_cost = 2.0 * (1.0 + ratio)
    if policy == "blsm3":
        # C1' is a promoted C1, not an extra tier: both on-disk levels
        # rewrite their resident run per crossing (leveled cost).
        return [leveled_cost, leveled_cost]
    return [leveled_cost if count <= 1 else 2.0 for count in counts]


def policy_read_amplification(
    policy: str,
    levels: int,
    fanout: int = 4,
    false_positive_rate: float = 0.0,
) -> float:
    """Worst-case seeks per point lookup, per policy.

    Without Bloom filters a lookup probes every resident run; with them
    it pays one seek for the run holding the key plus ``fpr`` expected
    seeks per other filter — the N-level generalization of
    :func:`bloom_read_amplification`.
    """
    runs = sum(policy_run_counts(policy, levels, fanout))
    if false_positive_rate <= 0.0:
        return float(runs)
    return 1.0 + (runs - 1) * false_positive_rate


def policy_space_amplification(
    policy: str, ratio: float, fanout: int = 4
) -> float:
    """Worst-case physical/logical size ratio, per policy.

    Leveling bounds stale versions to the upper levels' share
    (``1 + 1/ratio``); tiering may hold ``fanout`` full copies in its
    bottom level; lazy leveling's single-run bottom restores the
    leveled bound except for its tiered upper levels
    (``1 + fanout/ratio``).  ``blsm3`` keeps two ``data/ratio``-sized
    upper components (C1 and C1') above C2.
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must exceed 1, got {ratio}")
    if policy == "blsm3":
        return 1.0 + 2.0 / ratio
    if policy == "leveled":
        return 1.0 + 1.0 / ratio
    if policy == "tiered":
        return float(fanout)
    if policy == "lazy-leveled":
        return 1.0 + fanout / ratio
    raise ValueError(f"unknown compaction policy {policy!r}")


def policy_table(
    policies: list[str] | None = None,
    data_over_base: float = 64.0,
    ratio: float = 4.0,
    fanout: int = 4,
    false_positive_rate: float = 0.01,
) -> list[dict[str, object]]:
    """The design space in one table: amplifications per policy.

    Rows carry ``policy``, ``levels``, ``write_amp`` (with its
    ``per_level`` breakdown), ``read_seeks`` (Bloom-filtered and
    filterless) and ``space_amp`` at one data size — the analytic
    counterpart of the measured ``BENCH_6.json`` sweep.
    """
    from repro.core.compaction.policy import POLICY_NAMES

    names = list(policies) if policies else list(POLICY_NAMES)
    levels = geometric_levels(data_over_base, ratio)
    rows: list[dict[str, object]] = []
    for name in names:
        depth = 2 if name == "blsm3" else levels
        rows.append(
            {
                "policy": name,
                "levels": depth,
                "write_amp": policy_write_amplification(
                    name, depth, ratio, fanout
                ),
                "per_level": per_level_write_amplification(
                    name, depth, ratio, fanout
                ),
                "read_seeks": policy_read_amplification(
                    name, depth, fanout, false_positive_rate
                ),
                "read_seeks_no_bloom": policy_read_amplification(
                    name, depth, fanout
                ),
                "space_amp": policy_space_amplification(name, ratio, fanout),
            }
        )
    return rows


def read_fanout(
    page_size: int, key_bytes: int, value_bytes: int, pointer_bytes: int = 8
) -> float:
    """Appendix A's read fanout: data addressed per byte of index RAM.

    ``max(page_size, key + value) / (key + pointer)`` — about 40 for
    100-byte keys and 4 KB pages.
    """
    if page_size <= 0 or key_bytes <= 0:
        raise ValueError("page_size and key_bytes must be positive")
    addressed = max(page_size, key_bytes + value_bytes)
    return addressed / (key_bytes + pointer_bytes)


def figure2_series(
    r_values: list[int] | None = None,
    max_ratio: int = 16,
    points_per_unit: int = 2,
) -> dict[str, list[tuple[float, float, float]]]:
    """The Figure 2 data: per curve, (ratio, seek amp, bandwidth amp).

    Returns a mapping from curve label (``bloom`` or ``R=k``) to its
    series over data sizes 0..``max_ratio`` multiples of RAM.
    """
    if r_values is None:
        r_values = list(range(2, 11))
    ratios = [
        i / points_per_unit for i in range(0, max_ratio * points_per_unit + 1)
    ]
    series: dict[str, list[tuple[float, float, float]]] = {"bloom": []}
    for ratio in ratios:
        series["bloom"].append(
            (
                ratio,
                bloom_read_amplification(ratio),
                bloom_bandwidth_amplification(ratio),
            )
        )
    for r in r_values:
        curve: list[tuple[float, float, float]] = []
        for ratio in ratios:
            if ratio <= 1.0:
                curve.append((ratio, 0.0, 0.0))
            else:
                curve.append(
                    (
                        ratio,
                        cascade_read_amplification(r, ratio),
                        cascade_bandwidth_amplification(r, ratio),
                    )
                )
        series[f"R={r}"] = curve
    return series
