"""Analytical models from the paper (Sections 2.1, 3.1 and Appendix A)."""

from repro.analysis.amplification import (
    bloom_bandwidth_amplification,
    bloom_read_amplification,
    cascade_bandwidth_amplification,
    cascade_read_amplification,
    figure2_series,
    geometric_levels,
    per_level_write_amplification,
    policy_read_amplification,
    policy_run_counts,
    policy_space_amplification,
    policy_table,
    policy_write_amplification,
    read_fanout,
)
from repro.analysis.crossover import (
    crossover_object_bytes,
    crossover_table,
    log_structured_write_seconds,
    policy_crossover_table,
    update_in_place_write_seconds,
)
from repro.analysis.five_minute import DeviceSpec, cache_gb_table, STANDARD_DEVICES
from repro.analysis.levels import (
    level_ratio,
    optimal_levels_for_write,
    read_amplification,
    tradeoff_table,
    write_amplification,
)
from repro.analysis.stability import (
    bounded_latency_block,
    bounded_latency_check,
    stability_compare_rules,
    stability_table,
)

__all__ = [
    "DeviceSpec",
    "STANDARD_DEVICES",
    "bloom_bandwidth_amplification",
    "bloom_read_amplification",
    "bounded_latency_block",
    "bounded_latency_check",
    "cache_gb_table",
    "cascade_bandwidth_amplification",
    "cascade_read_amplification",
    "crossover_object_bytes",
    "crossover_table",
    "figure2_series",
    "geometric_levels",
    "log_structured_write_seconds",
    "update_in_place_write_seconds",
    "level_ratio",
    "optimal_levels_for_write",
    "per_level_write_amplification",
    "policy_crossover_table",
    "policy_read_amplification",
    "policy_run_counts",
    "policy_space_amplification",
    "policy_table",
    "policy_write_amplification",
    "read_amplification",
    "read_fanout",
    "stability_compare_rules",
    "stability_table",
    "tradeoff_table",
    "write_amplification",
]
