"""Analytical models from the paper (Sections 2.1, 3.1 and Appendix A)."""

from repro.analysis.amplification import (
    bloom_bandwidth_amplification,
    bloom_read_amplification,
    cascade_bandwidth_amplification,
    cascade_read_amplification,
    figure2_series,
    read_fanout,
)
from repro.analysis.crossover import (
    crossover_object_bytes,
    crossover_table,
    log_structured_write_seconds,
    update_in_place_write_seconds,
)
from repro.analysis.five_minute import DeviceSpec, cache_gb_table, STANDARD_DEVICES
from repro.analysis.levels import (
    level_ratio,
    optimal_levels_for_write,
    read_amplification,
    tradeoff_table,
    write_amplification,
)

__all__ = [
    "DeviceSpec",
    "STANDARD_DEVICES",
    "bloom_bandwidth_amplification",
    "bloom_read_amplification",
    "cache_gb_table",
    "cascade_bandwidth_amplification",
    "cascade_read_amplification",
    "crossover_object_bytes",
    "crossover_table",
    "figure2_series",
    "log_structured_write_seconds",
    "update_in_place_write_seconds",
    "level_ratio",
    "optimal_levels_for_write",
    "read_amplification",
    "read_fanout",
    "tradeoff_table",
    "write_amplification",
]
