"""Appendix A's Table 2: RAM needed to cache B-Tree index nodes.

For a read amplification of one, RAM must hold a (key, leaf-pointer)
entry for every piece of data that can be touched within the working
interval.  Two regimes bound the hot set:

* **seek-bound** — the device can only serve ``reads_per_sec x interval``
  distinct records in the interval, so only that many entries are needed;
* **capacity-bound** — once the whole device is hot, one entry per leaf
  page suffices (hot records pack onto shared leaves):
  ``capacity / page_size`` entries.

The paper's numbers assume 100-byte keys, 1000-byte values, 4096-byte
pages and roughly 100 bytes per cached entry; cells where the seek-bound
requirement exceeds the full-disk bound are printed as ``-`` (the device
is capacity-bound well before that access frequency).
"""

from __future__ import annotations

from dataclasses import dataclass

_GB = 1e9

#: Table 2's access-frequency rows (label, seconds).
ACCESS_INTERVALS: list[tuple[str, float]] = [
    ("Minute", 60.0),
    ("Five minute", 300.0),
    ("Half hour", 1800.0),
    ("Hour", 3600.0),
    ("Day", 86400.0),
    ("Week", 604800.0),
    ("Month", 2592000.0),
]


@dataclass(frozen=True)
class DeviceSpec:
    """One column of Table 2."""

    name: str
    capacity_gb: float
    reads_per_sec: float


#: Table 2's device columns.
STANDARD_DEVICES: list[DeviceSpec] = [
    DeviceSpec("SATA SSD", 512, 50_000),
    DeviceSpec("PCI-E SSD", 5000, 1_000_000),
    DeviceSpec("Server HDD", 300, 500),
    DeviceSpec("Media HDD", 2000, 250),
]


def full_disk_cache_gb(
    device: DeviceSpec, page_size: int = 4096, entry_bytes: int = 100
) -> float:
    """RAM to cache one index entry per leaf page of the whole device."""
    pages = device.capacity_gb * _GB / page_size
    return pages * entry_bytes / _GB


def interval_cache_gb(
    device: DeviceSpec,
    interval_seconds: float,
    page_size: int = 4096,
    entry_bytes: int = 100,
) -> float | None:
    """RAM for a read amplification of one at a given access frequency.

    Returns ``None`` (printed as ``-``) when the seek-bound hot set
    exceeds the whole device: the full-disk row already covers it.
    """
    seek_bound = device.reads_per_sec * interval_seconds * entry_bytes / _GB
    if seek_bound > full_disk_cache_gb(device, page_size, entry_bytes):
        return None
    return seek_bound


def cache_gb_table(
    devices: list[DeviceSpec] | None = None,
    page_size: int = 4096,
    entry_bytes: int = 100,
) -> list[tuple[str, list[float | None]]]:
    """Regenerate Table 2: rows of (interval label, GB per device).

    The final row, labelled ``Full disk``, is the capacity bound.
    """
    if devices is None:
        devices = STANDARD_DEVICES
    rows: list[tuple[str, list[float | None]]] = []
    for label, seconds in ACCESS_INTERVALS:
        rows.append(
            (
                label,
                [
                    interval_cache_gb(device, seconds, page_size, entry_bytes)
                    for device in devices
                ],
            )
        )
    rows.append(
        (
            "Full disk",
            [
                full_disk_cache_gb(device, page_size, entry_bytes)
                for device in devices
            ],
        )
    )
    return rows
