"""Stability-bench analysis: ceilings, tables and perf-gate rules.

Companions to :mod:`repro.ycsb.stability`: given a matrix of stability
runs (or a saved BENCH_9 :class:`~repro.obs.report.BenchReport`), this
module derives the bounded-latency verdict the paper's Section 4 claims
(the spring-and-gear scheduler's windowed p99.9 write-latency ceiling
sits strictly below the unthrottled base LSM's), renders the
human-readable matrix table, and produces the
:class:`~repro.obs.report.CompareRule` set the CI perf gate applies
against a committed baseline report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.obs.report import BenchReport, CompareRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ycsb.stability import StabilityResult

__all__ = [
    "bounded_latency_block",
    "bounded_latency_check",
    "stability_compare_rules",
    "stability_table",
]


def bounded_latency_block(
    results: Sequence["StabilityResult"],
) -> dict[str, Any] | None:
    """The bounded-latency contrast block for the BENCH_9 report.

    Compares the worst windowed write-latency p99.9 of the throttled
    flagship (``spring_gear`` when present, else the first throttled
    config) against the unthrottled baseline.  ``None`` when the matrix
    has no throttled/unthrottled pair to contrast.
    """
    throttled = next(
        (r for r in results if r.config.name == "spring_gear"),
        next((r for r in results if r.config.throttled), None),
    )
    unthrottled = next(
        (r for r in results if not r.config.throttled), None
    )
    if throttled is None or unthrottled is None:
        return None
    ratio = (
        unthrottled.write_p999_ceiling / throttled.write_p999_ceiling
        if throttled.write_p999_ceiling > 0
        else float("inf")
    )
    return {
        "throttled": throttled.config.name,
        "unthrottled": unthrottled.config.name,
        "throttled_p999_ceiling": throttled.write_p999_ceiling,
        "unthrottled_p999_ceiling": unthrottled.write_p999_ceiling,
        "ceiling_ratio": ratio,
        "bounded": bounded_latency_check(
            throttled.write_p999_ceiling, unthrottled.write_p999_ceiling
        ),
    }


def bounded_latency_check(
    throttled_ceiling: float, unthrottled_ceiling: float
) -> bool:
    """The acceptance predicate: throttled ceiling strictly below."""
    return 0.0 <= throttled_ceiling < unthrottled_ceiling


def stability_table(report: BenchReport) -> str:
    """Render a BENCH_9 report's matrix as an aligned text table."""
    configs: dict[str, Any] = report.metrics.get("configs", {})
    header = (
        f"{'config':<14} {'engine':<10} {'sched':<12} "
        f"{'rate':>9} {'p99':>10} {'p99.9 ceil':>11} "
        f"{'stalls':>7} {'stall s':>9} {'backpr':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, block in configs.items():
        write = block.get("write", {})
        stalls = block.get("stalls", {})
        lines.append(
            f"{name:<14} {block.get('engine', '?'):<10} "
            f"{block.get('scheduler', '?'):<12} "
            f"{block.get('achieved_rate', 0.0):>9.1f} "
            f"{write.get('p99', 0.0) * 1e3:>9.3f}ms "
            f"{block.get('write_p999_ceiling', 0.0) * 1e3:>10.3f}ms "
            f"{stalls.get('count', 0.0):>7.0f} "
            f"{stalls.get('seconds', 0.0):>9.4f} "
            f"{block.get('backpressure_engagements', 0.0):>7.0f}"
        )
    bounded = report.metrics.get("bounded_latency")
    if bounded:
        verdict = "BOUNDED" if bounded.get("bounded") else "NOT BOUNDED"
        lines.append("")
        lines.append(
            f"bounded latency: {verdict} — {bounded.get('throttled')} "
            f"p99.9 ceiling {bounded.get('throttled_p999_ceiling', 0.0) * 1e3:.3f}ms "
            f"vs {bounded.get('unthrottled')} "
            f"{bounded.get('unthrottled_p999_ceiling', 0.0) * 1e3:.3f}ms "
            f"({bounded.get('ceiling_ratio', 0.0):.1f}x)"
        )
    return "\n".join(lines)


def stability_compare_rules(
    baseline: BenchReport, tolerance: float = 0.25
) -> list[CompareRule]:
    """Perf-gate rules for diffing a stability run against a baseline.

    Derived from the baseline's own config matrix so the gate tracks
    whatever configurations the committed report actually ran: each
    config's p99.9 write-latency ceiling and overall write p99 must not
    degrade (lower is better) and its achieved rate must not collapse
    (higher is better), all within ``tolerance``.
    """
    rules: list[CompareRule] = []
    for name in baseline.metrics.get("configs", {}):
        prefix = f"configs.{name}"
        rules.append(
            CompareRule(
                f"{prefix}.write_p999_ceiling", "lower", tolerance
            )
        )
        rules.append(
            CompareRule(f"{prefix}.write.p99", "lower", tolerance)
        )
        rules.append(
            CompareRule(f"{prefix}.achieved_rate", "higher", tolerance)
        )
    if "bounded_latency" in baseline.metrics:
        rules.append(
            CompareRule(
                "bounded_latency.ceiling_ratio", "higher", tolerance
            )
        )
    return rules
