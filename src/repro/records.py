"""Record model: base records, deltas and tombstones.

Section 3.1.1 is built on the distinction between *base records* (a full
value) and *deltas* (a partial update that must be folded onto an older
version).  Reads walk tree components from newest to oldest and may stop at
the first **base record or tombstone** — early termination — because
updates to the same key are placed in tree levels consistent with their
write order.  Reads that encounter deltas must keep collecting until a base
record is found, then fold the deltas on in chronological order.

Delta semantics in this reproduction are byte-append: applying delta ``d``
to value ``v`` yields ``v + d``.  Any associative reconstruction rule would
exercise the same code paths; append keeps tests legible.

Tombstones record deletions: on-disk components are immutable, so a delete
is a write that wins over older versions until the tombstone reaches the
largest component and can be discarded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from dataclasses import field as _field

RECORD_HEADER_BYTES = 16  # simulated per-record framing on a data page


class RecordKind(enum.IntEnum):
    """What a stored version of a key represents."""

    BASE = 0
    DELTA = 1
    TOMBSTONE = 2


@dataclass(frozen=True, slots=True)
class Record:
    """One immutable version of a key.

    Attributes:
        key: the record key.
        value: full value for ``BASE``, partial update for ``DELTA``,
            empty for ``TOMBSTONE``.
        kind: what this version represents.
        seqno: global write sequence number; larger is newer.
        first_seqno: the oldest write folded into this record, or ``-1``
            meaning "just :attr:`seqno`".  A record produced by folding
            covers a whole range of writes; exact log retention keeps
            every log record in ``[coverage_start, seqno]`` so crash
            replay can reconstruct the fold.
    """

    key: bytes
    value: bytes
    kind: RecordKind
    seqno: int
    first_seqno: int = -1
    nbytes: int = _field(init=False, repr=False, compare=False)
    """Simulated on-disk footprint; precomputed because merge and
    memtable accounting read it several times per record and a derived
    property showed up in hot-path profiles."""

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "nbytes",
            RECORD_HEADER_BYTES + len(self.key) + len(self.value),
        )

    @property
    def coverage_start(self) -> int:
        """Oldest write this record's value incorporates."""
        return self.first_seqno if self.first_seqno >= 0 else self.seqno

    @property
    def is_base(self) -> bool:
        return self.kind is RecordKind.BASE

    @property
    def is_delta(self) -> bool:
        return self.kind is RecordKind.DELTA

    @property
    def is_tombstone(self) -> bool:
        return self.kind is RecordKind.TOMBSTONE

    def checksum_bytes(self) -> bytes:
        """Canonical byte rendering for payload checksums.

        :func:`repro.storage.checksum.payload_checksum` duck-types this
        method; one C-level ``%`` format replaces the dataclass ``repr``
        the generic renderer would otherwise fall back to, which
        dominated hot-path profiles (every page write and verify
        checksums its records).
        """
        return b"R%d,%d,%d,%d:%s,%d:%s;" % (
            self.kind,
            self.seqno,
            self.first_seqno,
            len(self.key),
            self.key,
            len(self.value),
            self.value,
        )

    @staticmethod
    def base(
        key: bytes, value: bytes, seqno: int, first_seqno: int = -1
    ) -> "Record":
        return Record(key, value, RecordKind.BASE, seqno, first_seqno)

    @staticmethod
    def delta(
        key: bytes, value: bytes, seqno: int, first_seqno: int = -1
    ) -> "Record":
        return Record(key, value, RecordKind.DELTA, seqno, first_seqno)

    @staticmethod
    def tombstone(key: bytes, seqno: int, first_seqno: int = -1) -> "Record":
        return Record(key, b"", RecordKind.TOMBSTONE, seqno, first_seqno)


def apply_delta(base_value: bytes, delta_value: bytes) -> bytes:
    """Fold one delta onto a base value (byte-append semantics)."""
    return base_value + delta_value


def resolve(versions_newest_first: list[Record]) -> bytes | None:
    """Collapse versions of one key into its current value.

    Only deltas with a seqno *greater than* the anchoring record's are
    applied: crash recovery conservatively replays log records that may
    already be folded into a durable component (log truncation lags, and
    snowshoveling lags it further — Section 4.4.2), so a replayed delta
    can reappear "above" a base that already includes it.  Base records
    and tombstones are idempotent under such duplication; the seqno
    guard makes deltas idempotent too.

    Args:
        versions_newest_first: all known versions of a single key, newest
            first (the order reads encounter them when walking C0, C1, C2).

    Returns:
        The current value, or ``None`` if the key is deleted or there is no
        base record to anchor the deltas.
    """
    deltas: list[Record] = []
    for record in versions_newest_first:
        if record.is_delta:
            # Distinct versions have strictly decreasing seqnos walking
            # down the tree; a delta that does not is a replay duplicate
            # of one already collected.
            if deltas and record.seqno >= deltas[-1].seqno:
                continue
            deltas.append(record)
            continue
        if record.is_tombstone:
            return None
        value = record.value
        for delta_record in reversed(deltas):  # oldest delta first
            if delta_record.seqno > record.seqno:
                value = apply_delta(value, delta_record.value)
        return value
    return None


def fold(newer: Record, older: Record) -> Record:
    """Combine two versions of the same key during a merge.

    Merges keep at most one record per key per component.  A newer base or
    tombstone simply supersedes; a newer delta over an older base folds into
    a new base; a delta over a delta concatenates (still a delta); a delta
    over a tombstone has nothing to apply to and supersedes it as a dangling
    delta.

    A delta folded over a tombstone yields a tombstone: the deletion
    still shadows every older version of the key, and a dangling delta
    resolves to "no value" anyway — but it must not let reads walk past
    it and anchor on an older base in a deeper component.

    A "newer" record whose seqno does not exceed the older one's is a
    crash-replay duplicate (a defensive guard; exact log retention
    prevents these arising): the older record already incorporates it,
    so it folds to the older record unchanged.
    """
    if newer.key != older.key:
        raise ValueError("fold requires records with the same key")
    if newer.seqno <= older.seqno:
        return older  # replayed duplicate; already incorporated
    if not newer.is_delta:
        # A base or tombstone supersedes: coverage is its own.
        return newer
    # A delta extends the older record: coverage spans both.
    coverage = older.coverage_start
    if older.is_base:
        return Record(
            newer.key,
            apply_delta(older.value, newer.value),
            RecordKind.BASE,
            newer.seqno,
            first_seqno=coverage,
        )
    if older.is_delta:
        return Record(
            newer.key,
            apply_delta(older.value, newer.value),
            RecordKind.DELTA,
            newer.seqno,
            first_seqno=coverage,
        )
    # Delta over a tombstone: the deletion must keep shadowing deeper
    # versions, so the fold stays a tombstone (at the delta's seqno).
    return Record(newer.key, b"", RecordKind.TOMBSTONE, newer.seqno,
                  first_seqno=coverage)
