"""Transactional storage substrate (the paper's Stasis, Section 4.4.2).

bLSM is built on Stasis, a general-purpose transactional storage system
providing a region allocator (contiguous extents, no filesystem
fragmentation), a carefully tuned buffer manager with CLOCK eviction, a
physical write-ahead log for metadata, and a separate logical log for
individual writes.  This package re-implements each of those pieces over a
:class:`~repro.sim.SimDisk`.
"""

from repro.storage.buffer import BufferManager, EvictionPolicy
from repro.storage.checksum import CORRUPTION_MASK, payload_checksum
from repro.storage.group_commit import CommitTicket, GroupCommitQueue
from repro.storage.logical_log import DurabilityMode, LogicalLog, LogicalRecord
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, PageFile
from repro.storage.region import Extent, RegionAllocator
from repro.storage.stasis import Stasis
from repro.storage.wal import WALRecord, WriteAheadLog

__all__ = [
    "BufferManager",
    "CORRUPTION_MASK",
    "CommitTicket",
    "DEFAULT_PAGE_SIZE",
    "DurabilityMode",
    "EvictionPolicy",
    "Extent",
    "GroupCommitQueue",
    "LogicalLog",
    "LogicalRecord",
    "PageFile",
    "RegionAllocator",
    "Stasis",
    "WALRecord",
    "WriteAheadLog",
    "payload_checksum",
]
