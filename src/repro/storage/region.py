"""Region (extent) allocator.

Stasis's region allocator hands out chunks of disk that are *guaranteed
contiguous*, "eliminating the possibility of disk fragmentation and other
overheads inherent in general-purpose filesystems" (Section 4.4.2).  Tree
merges allocate one extent per new tree component, write it strictly
sequentially, and free the extents of the components they replace.

The allocator is first-fit over a sorted free list with coalescing of
adjacent free extents, so a long-running simulation does not leak space.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import RegionError


@dataclass(frozen=True, order=True)
class Extent:
    """A contiguous run of pages: ``[start, start + length)``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last page id in the extent."""
        return self.start + self.length

    def __contains__(self, page_id: int) -> bool:
        return self.start <= page_id < self.end


class RegionAllocator:
    """First-fit extent allocator with free-list coalescing.

    Page ids grow without bound (the simulated device has no fixed
    capacity), but freed extents are reused before new space is claimed so
    that sequential layout, and therefore seek accounting, stays realistic.
    """

    def __init__(self) -> None:
        self._free: list[Extent] = []  # sorted by start, non-adjacent
        self._next_page = 0
        self._allocated: dict[int, Extent] = {}  # start -> extent

    @property
    def high_water_page(self) -> int:
        """Highest page id ever handed out plus one."""
        return self._next_page

    @property
    def allocated_extents(self) -> list[Extent]:
        """Currently allocated extents, sorted by start page."""
        return sorted(self._allocated.values())

    def allocate(self, length: int) -> Extent:
        """Allocate a contiguous extent of ``length`` pages."""
        if length <= 0:
            raise RegionError(f"extent length must be positive, got {length}")
        for i, free in enumerate(self._free):
            if free.length >= length:
                extent = Extent(free.start, length)
                remainder = free.length - length
                if remainder:
                    self._free[i] = Extent(free.start + length, remainder)
                else:
                    del self._free[i]
                self._allocated[extent.start] = extent
                return extent
        extent = Extent(self._next_page, length)
        self._next_page += length
        self._allocated[extent.start] = extent
        return extent

    def free(self, extent: Extent) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        current = self._allocated.pop(extent.start, None)
        if current != extent:
            raise RegionError(f"extent {extent} is not currently allocated")
        i = bisect.bisect_left(self._free, extent)
        self._free.insert(i, extent)
        self._coalesce_around(i)

    def shrink(self, extent: Extent, new_length: int) -> Extent:
        """Give back the tail of an allocated extent.

        Builders over-allocate from a size estimate and return the unused
        tail when they finish, so estimates never leak space.
        """
        current = self._allocated.get(extent.start)
        if current != extent:
            raise RegionError(f"extent {extent} is not currently allocated")
        if not 0 < new_length <= extent.length:
            raise RegionError(
                f"cannot shrink extent of length {extent.length} to {new_length}"
            )
        if new_length == extent.length:
            return extent
        shrunk = Extent(extent.start, new_length)
        tail = Extent(extent.start + new_length, extent.length - new_length)
        self._allocated[extent.start] = shrunk
        i = bisect.bisect_left(self._free, tail)
        self._free.insert(i, tail)
        self._coalesce_around(i)
        return shrunk

    def _coalesce_around(self, i: int) -> None:
        # Merge with the successor first so the index of ``i`` stays valid.
        if i + 1 < len(self._free) and self._free[i].end == self._free[i + 1].start:
            merged = Extent(
                self._free[i].start,
                self._free[i].length + self._free[i + 1].length,
            )
            self._free[i : i + 2] = [merged]
        if i > 0 and self._free[i - 1].end == self._free[i].start:
            merged = Extent(
                self._free[i - 1].start,
                self._free[i - 1].length + self._free[i].length,
            )
            self._free[i - 1 : i + 1] = [merged]

    def free_pages(self) -> int:
        """Total pages currently on the free list."""
        return sum(extent.length for extent in self._free)
