"""Checksums for simulated durable payloads.

Pages and log records hold Python payloads rather than serialized bytes,
so checksums are computed over a canonical byte rendering.  Detection is
still end-to-end honest: writers store the checksum at write time,
readers recompute it from what the device "returns" — and a device that
corrupted or tore the range perturbs the read-back value
(:data:`CORRUPTION_MASK`), so the comparison fails exactly when the
stored bytes no longer match what was written (§4.4.2 hardening).
"""

from __future__ import annotations

import zlib

CORRUPTION_MASK = 0x5F5F5F5F
"""XOR perturbation applied to a checksum read back from a damaged range."""


def payload_checksum(*parts: object) -> int:
    """CRC32 over the canonical byte rendering of ``parts``."""
    digest = 0
    for part in parts:
        data = part if isinstance(part, bytes) else repr(part).encode()
        digest = zlib.crc32(data, digest)
    return digest
