"""Checksums for simulated durable payloads.

Pages and log records hold Python payloads rather than serialized bytes,
so checksums are computed over a canonical byte rendering.  Detection is
still end-to-end honest: writers store the checksum at write time,
readers recompute it from what the device "returns" — and a device that
corrupted or tore the range perturbs the read-back value
(:data:`CORRUPTION_MASK`), so the comparison fails exactly when the
stored bytes no longer match what was written (§4.4.2 hardening).

The rendering is type-dispatched rather than ``repr``-based: checksums
are recomputed within a single run (never persisted across code
versions), so the only requirements are determinism and that distinct
payloads render distinctly — each scalar is length- or tag-framed to
rule out concatenation collisions.  Objects may supply a
``checksum_bytes()`` method returning their own canonical rendering
(:class:`~repro.records.Record` does); everything else falls back to
``repr``.  This matters because checksums sit on the per-operation hot
path (every log append and every page write/verify), where ``repr`` of
record dataclasses dominated profiles.
"""

from __future__ import annotations

import zlib

CORRUPTION_MASK = 0x5F5F5F5F
"""XOR perturbation applied to a checksum read back from a damaged range."""

_crc32 = zlib.crc32


def _update(digest: int, part: object) -> int:
    """Fold one payload part into a running CRC32."""
    cls = type(part)
    if cls is bytes:
        return _crc32(part, _crc32(b"b%d;" % len(part), digest))
    if cls is int:
        return _crc32(b"i%d;" % part, digest)
    if cls is str:
        data = part.encode()
        return _crc32(data, _crc32(b"s%d;" % len(data), digest))
    if cls is tuple or cls is list:
        digest = _crc32(b"l%d;" % len(part), digest)
        for item in part:
            # Page payloads are sequences of records; resolving their
            # renderer inline skips a recursive call per element.
            render = getattr(item, "checksum_bytes", None)
            if render is not None:
                digest = _crc32(render(), digest)
            else:
                digest = _update(digest, item)
        return digest
    if part is None:
        return _crc32(b"n;", digest)
    render = getattr(part, "checksum_bytes", None)
    if render is not None:
        return _crc32(render(), digest)
    return _crc32(repr(part).encode(), digest)


def payload_checksum(*parts: object) -> int:
    """CRC32 over the canonical byte rendering of ``parts``."""
    digest = 0
    for part in parts:
        digest = _update(digest, part)
    return digest
