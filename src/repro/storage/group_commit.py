"""Leader-based group commit over the logical log (Section 4.4.2).

bLSM rides on Stasis' group commit: many sessions' writes are staged
into the log buffer, the first committer to reach the log becomes the
*leader*, issues one force covering every staged record, and the
waiting *followers* inherit the durability of that force instead of
issuing their own.  One device force amortizes across the whole group,
which is the difference between commit latency bounded by rotational
latency per session and per *group*.

On the virtual clock the queue models this with a dedicated commit
:class:`~repro.sim.clock.Timeline` (the log writer).  Committing a
batch stages its records (already appended by ``log()`` under
:class:`~repro.storage.logical_log.DurabilityMode.GROUP`) and enqueues
a :class:`CommitTicket`.  A force starts as soon as the log writer is
idle; every ticket enqueued by then joins the leader's
:class:`CommitGroup`.  Tickets enqueued *while* a force is in flight
stack up and form the next group — exactly the LevelDB/Stasis
batching dynamic: the busier the log device, the bigger the groups.

Durability contract: a ticket is acknowledged (``durable_at`` set)
only when a force covering its last seqno completes.  On a crash,
unacknowledged staged records are individually dropped-or-kept by the
torn-force prefix rule of the logical log; acknowledged tickets always
replay in full.  The crash matrix (``tests/test_group_commit.py``)
enumerates every force boundary to pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.clock import Timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.stasis import Stasis

__all__ = ["CommitGroup", "CommitTicket", "GroupCommitQueue"]


@dataclass
class CommitTicket:
    """One session's pending commit: a staged batch awaiting a force.

    ``durable_at`` is ``None`` until a leader's force covers the
    ticket; afterwards it is the virtual time the acknowledgement
    became possible, and ``durable_lsn`` is the log's durable seqno
    the follower inherited from the leader.
    """

    session: int
    first_seqno: int
    last_seqno: int
    ops: int
    enqueued_at: float
    leader: bool = False
    group_size: int = 0
    durable_at: float | None = None
    durable_lsn: int = -1

    @property
    def durable(self) -> bool:
        return self.durable_at is not None

    @property
    def queue_delay(self) -> float:
        """Seconds between enqueue and acknowledgement (0 if pending)."""
        if self.durable_at is None:
            return 0.0
        return max(0.0, self.durable_at - self.enqueued_at)


@dataclass
class CommitGroup:
    """The set of tickets one leader force acknowledged together."""

    leader: CommitTicket
    tickets: list[CommitTicket] = field(default_factory=list)
    forced_at: float = 0.0
    durable_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.tickets)


class GroupCommitQueue:
    """The commit queue in front of the write-ahead/logical logs.

    One queue per :class:`~repro.storage.stasis.Stasis` instance (so
    one per shard in a sharded fleet — each shard's log device has its
    own log writer).  The queue is event-driven: every ``submit``
    drains whatever groups the log writer has had time to force, so no
    separate scheduler loop is needed on the virtual clock.
    """

    def __init__(self, stasis: "Stasis") -> None:
        self.stasis = stasis
        self.timeline = Timeline("commit")
        self._pending: list[CommitTicket] = []
        #: Leader-group sizes seen so far: {group size: occurrences}.
        self.group_sizes: dict[int, int] = {}
        self.commits = 0
        self.committed_ops = 0
        self.forces = 0
        self._last_force_issued = False

    @property
    def pending(self) -> int:
        """Tickets staged but not yet covered by a force."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Session surface
    # ------------------------------------------------------------------

    def submit(
        self, first_seqno: int, last_seqno: int, ops: int, session: int = 0
    ) -> CommitTicket:
        """Stage a commit request; returns immediately with its ticket.

        The caller has already appended the batch's records to the
        logical log (``DurabilityMode.GROUP`` stages without forcing).
        The ticket is acknowledged asynchronously by a leader force;
        use :meth:`wait` (or :meth:`commit`) to block on it.
        """
        if last_seqno < first_seqno:
            raise ValueError(
                f"empty commit range [{first_seqno}, {last_seqno}]"
            )
        ticket = CommitTicket(
            session=session,
            first_seqno=first_seqno,
            last_seqno=last_seqno,
            ops=ops,
            enqueued_at=self.stasis.clock.now,
        )
        self._pending.append(ticket)
        self._drain_ready()
        return ticket

    def commit(
        self,
        first_seqno: int,
        last_seqno: int,
        ops: int,
        session: int = 0,
        wait: bool = True,
    ) -> CommitTicket:
        """Submit and (by default) block until the ticket is durable."""
        ticket = self.submit(first_seqno, last_seqno, ops, session=session)
        if wait:
            self.wait(ticket)
        return ticket

    def wait(self, ticket: CommitTicket) -> CommitTicket:
        """Advance virtual time until ``ticket`` is acknowledged."""
        clock = self.stasis.clock
        while ticket.durable_at is None:
            self._drain_ready()
            if ticket.durable_at is None and self.timeline.busy(clock):
                clock.advance_to(self.timeline.now)
        clock.advance_to(ticket.durable_at)
        return ticket

    def drain(self) -> None:
        """Force every pending group (a flush/close durability barrier)."""
        clock = self.stasis.clock
        while self._pending:
            self._drain_ready()
            if self._pending and self.timeline.busy(clock):
                clock.advance_to(self.timeline.now)
        clock.advance_to(self.timeline.now)

    def crash(self) -> None:
        """Unacknowledged tickets die with the process."""
        self._pending.clear()

    @property
    def forces_per_commit(self) -> float:
        """Device forces per committed batch (1.0 = no amortization)."""
        if self.commits == 0:
            return 0.0
        return self.forces / self.commits

    @property
    def forces_per_op(self) -> float:
        """Device forces per committed operation (SYNC would be 1.0)."""
        if self.committed_ops == 0:
            return 0.0
        return self.forces / self.committed_ops

    # ------------------------------------------------------------------
    # The log writer
    # ------------------------------------------------------------------

    def _drain_ready(self) -> None:
        """Force every group whose leader has had time to start.

        A force starting at time *t* covers exactly the tickets
        enqueued by *t*; tickets enqueued during the force form the
        next group.  The loop stops when the log writer is ahead of
        the foreground clock (a force is still in flight from the
        caller's point of view).
        """
        clock = self.stasis.clock
        while self._pending and not self.timeline.busy(clock):
            start = max(self.timeline.now, self._pending[0].enqueued_at)
            cut = len(self._pending)
            for index, ticket in enumerate(self._pending):
                if ticket.enqueued_at > start:
                    cut = index
                    break
            group = self._pending[:cut]
            self._pending = self._pending[cut:]
            self._force_group(group, start)

    def _force_group(self, tickets: list[CommitTicket], start: float) -> None:
        clock = self.stasis.clock
        log = self.stasis.logical_log
        wal = self.stasis.wal
        self.timeline.advance_to(start)
        issued = log.pending_count > 0 or wal.pending_records > 0
        if issued:
            # The leader's force runs on the log writer's timeline:
            # followers and concurrent reads never charge for it, they
            # only feel it through the ticket's durable_at.
            with clock.running_on(self.timeline):
                log.force()
                wal.force()
            self.forces += 1
        self._last_force_issued = issued
        durable_at = self.timeline.now
        durable_lsn = log.durable_seqno
        leader = tickets[0]
        leader.leader = True
        for ticket in tickets:
            ticket.durable_at = durable_at
            ticket.durable_lsn = durable_lsn
            ticket.group_size = len(tickets)
        self.commits += len(tickets)
        self.committed_ops += sum(ticket.ops for ticket in tickets)
        self.group_sizes[len(tickets)] = (
            self.group_sizes.get(len(tickets), 0) + 1
        )
        self._observe(tickets, durable_at)

    def _observe(self, tickets: list[CommitTicket], durable_at: float) -> None:
        runtime = self.stasis.runtime
        if runtime is None:
            return
        metrics = runtime.metrics
        metrics.counter("commit.commits").inc(len(tickets))
        metrics.counter("commit.ops").inc(
            sum(ticket.ops for ticket in tickets)
        )
        if self._last_force_issued:
            metrics.counter("commit.forces").inc()
        metrics.histogram("commit.group_size").observe(float(len(tickets)))
        delay = metrics.histogram("commit.queue_delay")
        for ticket in tickets:
            delay.observe(ticket.queue_delay)
