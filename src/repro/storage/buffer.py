"""Buffer manager with CLOCK (default) and LRU eviction.

Stasis's buffer manager was a tuning focus of the paper: the authors added
a CLOCK eviction policy because "LRU was a concurrency bottleneck" and an
improved writeback policy (Section 4.4.2).  In this reproduction the two
policies are also behaviourally different in a way the simulator can see:
dirty evictions are random writes charged to the device, which is how the
update-in-place B-Tree pays the second seek of its two-seek update
(Section 2.2).

Sequential bulk writers (tree merges) deliberately bypass the buffer
manager and write to the page file directly; the paper notes that "merge
threads avoid reading pre-images of pages they are about to overwrite".
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError
from repro.storage.pagefile import PageFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runtime import EngineRuntime


class EvictionPolicy(enum.Enum):
    """Which replacement policy the buffer manager runs."""

    CLOCK = "clock"
    LRU = "lru"


@dataclass(slots=True)
class _Frame:
    payload: Any
    referenced: bool = True
    dirty: bool = False


class BufferManager:
    """A page cache of bounded size in front of a :class:`PageFile`.

    ``get`` faults pages in (charging a device read on miss); ``put``
    installs a new payload and marks the frame dirty; dirty frames are
    written back when evicted or when ``flush_all`` runs.
    """

    def __init__(
        self,
        pagefile: PageFile,
        capacity_pages: int,
        policy: EvictionPolicy = EvictionPolicy.CLOCK,
        runtime: "EngineRuntime | None" = None,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError(
                f"capacity_pages must be positive, got {capacity_pages}"
            )
        self.pagefile = pagefile
        self.capacity_pages = capacity_pages
        self.policy = policy
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._ring: list[int] = []  # CLOCK hand order; may hold stale ids
        self._hand = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.runtime = runtime
        if runtime is not None:
            metrics = runtime.metrics
            self._ctr_hits = metrics.counter("buffer.hits")
            self._ctr_misses = metrics.counter("buffer.misses")
            self._ctr_evictions = metrics.counter("buffer.evictions")
            self._ctr_writebacks = metrics.counter("buffer.dirty_writebacks")

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def get(self, page_id: int) -> Any:
        """Return a page payload, reading from the device on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            if self.runtime is not None:
                self._ctr_hits.inc()
            self._touch(page_id, frame)
            return frame.payload
        self.misses += 1
        if self.runtime is not None:
            self._ctr_misses.inc()
        payload = self.pagefile.read_page(page_id)
        self._install(page_id, _Frame(payload))
        return payload

    def put(self, page_id: int, payload: Any, dirty: bool = True) -> None:
        """Install a payload for a page without reading the device."""
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.payload = payload
            frame.dirty = frame.dirty or dirty
            self._touch(page_id, frame)
            return
        self._install(page_id, _Frame(payload, dirty=dirty))

    def flush_page(self, page_id: int) -> None:
        """Write one dirty page back to the device."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"page {page_id} is not resident")
        if frame.dirty:
            self.pagefile.write_page(page_id, frame.payload)
            self._note_writeback()
            frame.dirty = False

    def flush_all(self) -> int:
        """Write back every dirty page, in page-id (elevator) order.

        Returns the number of pages written.
        """
        written = 0
        for page_id in sorted(self._frames):
            frame = self._frames[page_id]
            if frame.dirty:
                self.pagefile.write_page(page_id, frame.payload)
                self._note_writeback()
                frame.dirty = False
                written += 1
        return written

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache without writing it back.

        Used when a tree component is deleted: its pages can never be
        referenced again, so writeback would be wasted I/O.
        """
        self._frames.pop(page_id, None)

    def drop_all(self) -> None:
        """Drop the entire cache without writeback (simulated crash)."""
        self._frames.clear()
        self._ring.clear()
        self._hand = 0

    def _note_writeback(self) -> None:
        self.dirty_writebacks += 1
        if self.runtime is not None:
            self._ctr_writebacks.inc()

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _touch(self, page_id: int, frame: _Frame) -> None:
        if self.policy is EvictionPolicy.CLOCK:
            frame.referenced = True
        else:
            self._frames.move_to_end(page_id)

    def _install(self, page_id: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity_pages:
            self._evict_one()
        self._frames[page_id] = frame
        if self.policy is EvictionPolicy.CLOCK:
            self._ring.append(page_id)

    def _evict_one(self) -> None:
        if self.policy is EvictionPolicy.CLOCK:
            victim_id = self._clock_sweep()
        else:
            victim_id = next(iter(self._frames))
        frame = self._frames.pop(victim_id)
        if frame.dirty:
            self.pagefile.write_page(victim_id, frame.payload)
            self._note_writeback()
        self.evictions += 1
        if self.runtime is not None:
            self._ctr_evictions.inc()
            self.runtime.trace.emit(
                "buffer_evict", page_id=victim_id, dirty=frame.dirty
            )

    def _clock_sweep(self) -> int:
        """Advance the clock hand until an unreferenced frame is found."""
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
                # Compact out stale entries left by invalidate/evict.
                self._ring = [pid for pid in self._ring if pid in self._frames]
                if not self._ring:
                    raise StorageError("clock sweep over empty buffer pool")
            page_id = self._ring[self._hand]
            frame = self._frames.get(page_id)
            if frame is None:
                del self._ring[self._hand]
                continue
            if frame.referenced:
                frame.referenced = False
                self._hand += 1
                continue
            del self._ring[self._hand]
            return page_id
