"""Logical log providing per-write durability.

bLSM uses "a second, logical, log to provide durability for individual
writes" (Section 4.4.2).  Each application write appends one logical
record; the log is truncated once the covered writes reach a durable tree
component (a completed C0:C1 merge).  Snowshoveling delays truncation,
because C0 is never atomically emptied — the paper calls this out as a
recovery cost.

Three durability modes are supported, matching the paper and contemporary
practice (Section 4.4.2 and 5.1):

* ``SYNC`` — force the log on every write (commit-latency bound).
* ``ASYNC`` — size-triggered batching; force when the buffer exceeds a
  threshold.  This is the paper's benchmark configuration ("none of the
  systems sync their logs at commit").
* ``GROUP`` — leader-based group commit: ``log()`` only stages the
  record; a :class:`~repro.storage.group_commit.GroupCommitQueue` owns
  every force, so concurrent sessions amortize one force across their
  batches (Stasis group commit, Section 4.4.2).  Durability of an
  individual write is acknowledged by its commit ticket, never by
  ``log()`` returning.
* ``NONE`` — the degraded mode: no logging at all; after a crash, writes
  since the last completed merge are lost, which the paper notes is
  acceptable for high-throughput replication.

Hardening (fault-injection layer): records are checksummed at append
time.  A force torn mid-record by a :class:`~repro.errors.CrashPoint`
leaves the straddling record with a broken checksum; replay detects it
and *drops* it — a logical record is a single acknowledged-or-not write,
so dropping the torn (never-acknowledged) record is exactly the
durable-by-contract outcome.  Silent corruption marks on replayed ranges
raise :class:`~repro.errors.CorruptionError`.  An optional
:class:`~repro.faults.retry.RetryExecutor` absorbs transient force
failures with backoff.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import CorruptionError, CrashPoint
from repro.sim.disk import SimDisk
from repro.storage.checksum import CORRUPTION_MASK, payload_checksum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.retry import RetryExecutor

_RECORD_OVERHEAD = 24  # simulated framing per logical record


class DurabilityMode(enum.Enum):
    """How eagerly the logical log is forced to disk."""

    SYNC = "sync"
    ASYNC = "async"
    GROUP = "group"
    NONE = "none"


@dataclass(frozen=True)
class LogicalRecord:
    """One logged application write.

    ``op`` is an opaque tag (``put``, ``delete``, ``delta``); replay hands
    records back to the engine, which knows how to reapply them.
    """

    seqno: int
    op: str
    key: bytes
    value: bytes | None
    checksum: int = field(default=0, compare=False)
    nbytes: int = field(init=False, repr=False, compare=False, default=0)
    """Simulated on-disk size; precomputed (this is read on every append
    and every force, and a derived property showed up in profiles)."""

    def __post_init__(self) -> None:
        value_len = len(self.value) if self.value is not None else 0
        object.__setattr__(
            self, "nbytes", _RECORD_OVERHEAD + len(self.key) + value_len
        )


class LogicalLog:
    """Sequential operation log with group commit and truncation."""

    def __init__(
        self,
        disk: SimDisk,
        mode: DurabilityMode = DurabilityMode.ASYNC,
        group_commit_bytes: int = 512 * 1024,
        retry: "RetryExecutor | None" = None,
    ) -> None:
        self.disk = disk
        self.mode = mode
        self.group_commit_bytes = group_commit_bytes
        self.retry = retry
        self._durable: list[LogicalRecord] = []
        self._pending: list[LogicalRecord] = []
        self._pending_bytes = 0
        self._tail_offset = 0
        self._truncated_below = 0  # seqnos below this are covered by trees
        self._offsets: dict[int, tuple[int, int]] = {}  # seqno -> (offset, nbytes)
        self._torn: set[int] = set()  # seqnos whose write was torn mid-record
        self._durable_seqno = -1  # highest seqno fully persisted by a force
        self.torn_records_dropped = 0
        self.forces = 0  # completed non-empty forces (any mode)
        # A device that never corrupts or tears (plain SimDisk) can never
        # fail read-back verification, so skip the per-append checksum —
        # it sits on the write hot path.  Fault-capable devices pay.
        self._checksummed = type(disk).corrupted is not SimDisk.corrupted

    @property
    def truncated_below(self) -> int:
        """Lowest seqno still covered by the log."""
        return self._truncated_below

    @property
    def durable_records(self) -> int:
        """Number of records currently durable (post-truncation)."""
        return len(self._durable)

    @property
    def durable_seqno(self) -> int:
        """Highest seqno a completed force fully persisted (-1 if none).

        This is the LSN a group-commit leader hands to its followers:
        every record at or below it survived the leader's force.
        Truncation never lowers it — covered writes stay durable, just in
        a tree component instead of the log.
        """
        return self._durable_seqno

    @property
    def pending_count(self) -> int:
        """Staged (appended but not yet forced) records."""
        return len(self._pending)

    def log(self, seqno: int, op: str, key: bytes, value: bytes | None) -> float:
        """Append one write; return the virtual time spent forcing, if any."""
        if self.mode is DurabilityMode.NONE:
            return 0.0
        record = LogicalRecord(
            seqno,
            op,
            key,
            value,
            payload_checksum(seqno, op, key, value)
            if self._checksummed
            else 0,
        )
        self._pending.append(record)
        self._pending_bytes += record.nbytes
        if self.mode is DurabilityMode.SYNC:
            return self.force()
        if self.mode is DurabilityMode.GROUP:
            # The GroupCommitQueue owns every force; log() only stages.
            return 0.0
        if self._pending_bytes >= self.group_commit_bytes:
            return self.force()
        return 0.0

    def force(self) -> float:
        """Write buffered records sequentially; return service time.

        A :class:`~repro.errors.CrashPoint` mid-write models a torn force:
        fully-persisted records stay durable, the straddler stays on disk
        with a broken checksum (dropped at replay), later records are
        lost.  The crash re-raises — the process is dead.
        """
        if not self._pending:
            return 0.0
        offset = self._tail_offset
        nbytes = self._pending_bytes
        # A force is a durability barrier: the write it issues pays head
        # positioning even though the log is numerically sequential (see
        # SimDisk.sync_barrier).  This is what makes per-commit syncing
        # access-bound and gives group commit something to amortize.
        self.disk.sync_barrier()
        try:
            service = self._write(offset, nbytes)
        except CrashPoint as crash:
            self._absorb_torn_force(offset, crash.persisted_bytes)
            raise
        self.forces += 1
        cursor = offset
        for record in self._pending:
            self._offsets[record.seqno] = (cursor, record.nbytes)
            cursor += record.nbytes
        self._tail_offset += nbytes
        self._durable.extend(self._pending)
        self._durable_seqno = max(
            self._durable_seqno, max(r.seqno for r in self._pending)
        )
        self._pending.clear()
        self._pending_bytes = 0
        return service

    def _write(self, offset: int, nbytes: int) -> float:
        if self.retry is not None:
            return self.retry.run(
                lambda: self.disk.write(offset, nbytes), what="log.force"
            )
        return self.disk.write(offset, nbytes)

    def _absorb_torn_force(self, offset: int, persisted: int) -> None:
        """Account a force interrupted after ``persisted`` bytes."""
        cursor = 0
        for record in self._pending:
            if cursor + record.nbytes <= persisted:
                self._offsets[record.seqno] = (offset + cursor, record.nbytes)
                self._durable.append(record)
                self._durable_seqno = max(self._durable_seqno, record.seqno)
            elif cursor < persisted:
                self._offsets[record.seqno] = (offset + cursor, record.nbytes)
                self._durable.append(record)
                self._torn.add(record.seqno)
            cursor += record.nbytes
        self._tail_offset = offset + persisted
        self._pending.clear()
        self._pending_bytes = 0

    def truncate(self, below_seqno: int) -> None:
        """Drop durable records whose seqno is below ``below_seqno``.

        Called when a merge completes and the covered writes are durable in
        an on-disk tree component.
        """
        self._truncated_below = max(self._truncated_below, below_seqno)
        dropped = [
            r for r in self._durable if r.seqno < self._truncated_below
        ]
        self._durable = [
            record for record in self._durable if record.seqno >= self._truncated_below
        ]
        for record in dropped:
            self._offsets.pop(record.seqno, None)
            self._torn.discard(record.seqno)

    def retain_ranges(self, coverage: dict[bytes, tuple[int, int]]) -> float:
        """Exact truncation: keep only the writes still resident in C0.

        A completed merge makes every consumed write durable, but
        snowshoveling consumes C0 out of seqno order, so the un-durable
        writes are not a seqno *prefix* — they are exactly the records
        still resident in C0.  A resident record may be a *fold* of
        several writes, so per key the whole covered seqno range
        ``[coverage_start, seqno]`` is retained; replaying it in order
        reconstructs the fold.  Retention is exact because replaying a
        write a durable component already contains would double-apply
        deltas.

        A small checkpoint record describing the retained set is charged
        to the log device.  Returns the charge's service time.

        Args:
            coverage: per key, the (coverage_start, seqno) range of the
                resident record.
        """
        if self.mode is DurabilityMode.NONE:
            return 0.0

        def keep(record: LogicalRecord) -> bool:
            bounds = coverage.get(record.key)
            return bounds is not None and bounds[0] <= record.seqno <= bounds[1]

        past_all = 1 + max(
            (r.seqno for r in self._durable + self._pending), default=-1
        )
        dropped = [r for r in self._durable if not keep(r)]
        self._durable = [r for r in self._durable if keep(r)]
        for record in dropped:
            self._offsets.pop(record.seqno, None)
            self._torn.discard(record.seqno)
        checkpoint_bytes = 16 + 24 * len(coverage)
        service = self.disk.write(self._tail_offset, checkpoint_bytes)
        self._tail_offset += checkpoint_bytes
        retained = [r.seqno for r in self._durable]
        floor = min(retained) if retained else past_all
        self._truncated_below = max(self._truncated_below, floor)
        return service

    def replay(self) -> Iterator[LogicalRecord]:
        """Yield durable records in seqno order, charging replay I/O.

        Records whose read-back checksum fails because their force was
        torn are dropped (the write was never acknowledged); records whose
        byte range carries a silent-corruption mark raise
        :class:`~repro.errors.CorruptionError` — the write *was*
        acknowledged, so its loss must not be silent.
        """
        records = sorted(self._durable, key=lambda record: record.seqno)
        nbytes = sum(record.nbytes for record in records)
        if nbytes:
            start = min(
                (self._offsets[r.seqno][0] for r in records if r.seqno in self._offsets),
                default=0,
            )
            self.disk.read(start, nbytes)
        for record in records:
            if self._readback_checksum(record) != record.checksum:
                if record.seqno in self._torn:
                    self._drop_torn(record)
                    continue
                raise CorruptionError(
                    f"logical record seqno={record.seqno} op={record.op!r} "
                    f"failed checksum verification"
                )
            yield record

    def _readback_checksum(self, record: LogicalRecord) -> int:
        """The checksum as recomputed from what the device returns."""
        if not self._checksummed:
            # No corruption marks exist on this device class, but a tear
            # (CrashPoint mid-force) is tracked in memory regardless of
            # checksumming — keep detecting it without recomputing CRCs.
            if record.seqno in self._torn:
                return record.checksum ^ CORRUPTION_MASK
            return record.checksum
        placement = self._offsets.get(record.seqno)
        damaged = record.seqno in self._torn or (
            placement is not None and self.disk.corrupted(*placement)
        )
        actual = payload_checksum(record.seqno, record.op, record.key, record.value)
        return actual ^ CORRUPTION_MASK if damaged else actual

    def _drop_torn(self, record: LogicalRecord) -> None:
        self._durable = [r for r in self._durable if r.seqno != record.seqno]
        self._offsets.pop(record.seqno, None)
        self._torn.discard(record.seqno)
        self.torn_records_dropped += 1
        runtime = self.disk.runtime
        if runtime is not None:
            runtime.metrics.counter("log.torn_records_dropped").inc()
            runtime.trace.emit("log_torn_record", seqno=record.seqno, op=record.op)

    def crash(self) -> None:
        """Simulate a crash: buffered (un-forced) records are lost."""
        self._pending.clear()
        self._pending_bytes = 0
