"""Logical log providing per-write durability.

bLSM uses "a second, logical, log to provide durability for individual
writes" (Section 4.4.2).  Each application write appends one logical
record; the log is truncated once the covered writes reach a durable tree
component (a completed C0:C1 merge).  Snowshoveling delays truncation,
because C0 is never atomically emptied — the paper calls this out as a
recovery cost.

Three durability modes are supported, matching the paper and contemporary
practice (Section 4.4.2 and 5.1):

* ``SYNC`` — force the log on every write (commit-latency bound).
* ``ASYNC`` — group commit; force when the buffer exceeds a threshold.
  This is the paper's benchmark configuration ("none of the systems sync
  their logs at commit").
* ``NONE`` — the degraded mode: no logging at all; after a crash, writes
  since the last completed merge are lost, which the paper notes is
  acceptable for high-throughput replication.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.sim.disk import SimDisk

_RECORD_OVERHEAD = 24  # simulated framing per logical record


class DurabilityMode(enum.Enum):
    """How eagerly the logical log is forced to disk."""

    SYNC = "sync"
    ASYNC = "async"
    NONE = "none"


@dataclass(frozen=True)
class LogicalRecord:
    """One logged application write.

    ``op`` is an opaque tag (``put``, ``delete``, ``delta``); replay hands
    records back to the engine, which knows how to reapply them.
    """

    seqno: int
    op: str
    key: bytes
    value: bytes | None

    @property
    def nbytes(self) -> int:
        value_len = len(self.value) if self.value is not None else 0
        return _RECORD_OVERHEAD + len(self.key) + value_len


class LogicalLog:
    """Sequential operation log with group commit and truncation."""

    def __init__(
        self,
        disk: SimDisk,
        mode: DurabilityMode = DurabilityMode.ASYNC,
        group_commit_bytes: int = 512 * 1024,
    ) -> None:
        self.disk = disk
        self.mode = mode
        self.group_commit_bytes = group_commit_bytes
        self._durable: list[LogicalRecord] = []
        self._pending: list[LogicalRecord] = []
        self._pending_bytes = 0
        self._tail_offset = 0
        self._truncated_below = 0  # seqnos below this are covered by trees

    @property
    def truncated_below(self) -> int:
        """Lowest seqno still covered by the log."""
        return self._truncated_below

    @property
    def durable_records(self) -> int:
        """Number of records currently durable (post-truncation)."""
        return len(self._durable)

    def log(self, seqno: int, op: str, key: bytes, value: bytes | None) -> float:
        """Append one write; return the virtual time spent forcing, if any."""
        if self.mode is DurabilityMode.NONE:
            return 0.0
        record = LogicalRecord(seqno, op, key, value)
        self._pending.append(record)
        self._pending_bytes += record.nbytes
        if self.mode is DurabilityMode.SYNC:
            return self.force()
        if self._pending_bytes >= self.group_commit_bytes:
            return self.force()
        return 0.0

    def force(self) -> float:
        """Write buffered records sequentially; return service time."""
        if not self._pending:
            return 0.0
        service = self.disk.write(self._tail_offset, self._pending_bytes)
        self._tail_offset += self._pending_bytes
        self._durable.extend(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        return service

    def truncate(self, below_seqno: int) -> None:
        """Drop durable records whose seqno is below ``below_seqno``.

        Called when a merge completes and the covered writes are durable in
        an on-disk tree component.
        """
        self._truncated_below = max(self._truncated_below, below_seqno)
        self._durable = [
            record for record in self._durable if record.seqno >= self._truncated_below
        ]

    def retain_ranges(self, coverage: dict[bytes, tuple[int, int]]) -> float:
        """Exact truncation: keep only the writes still resident in C0.

        A completed merge makes every consumed write durable, but
        snowshoveling consumes C0 out of seqno order, so the un-durable
        writes are not a seqno *prefix* — they are exactly the records
        still resident in C0.  A resident record may be a *fold* of
        several writes, so per key the whole covered seqno range
        ``[coverage_start, seqno]`` is retained; replaying it in order
        reconstructs the fold.  Retention is exact because replaying a
        write a durable component already contains would double-apply
        deltas.

        A small checkpoint record describing the retained set is charged
        to the log device.  Returns the charge's service time.

        Args:
            coverage: per key, the (coverage_start, seqno) range of the
                resident record.
        """
        if self.mode is DurabilityMode.NONE:
            return 0.0

        def keep(record: LogicalRecord) -> bool:
            bounds = coverage.get(record.key)
            return bounds is not None and bounds[0] <= record.seqno <= bounds[1]

        past_all = 1 + max(
            (r.seqno for r in self._durable + self._pending), default=-1
        )
        self._durable = [r for r in self._durable if keep(r)]
        checkpoint_bytes = 16 + 24 * len(coverage)
        service = self.disk.write(self._tail_offset, checkpoint_bytes)
        self._tail_offset += checkpoint_bytes
        retained = [r.seqno for r in self._durable]
        floor = min(retained) if retained else past_all
        self._truncated_below = max(self._truncated_below, floor)
        return service

    def replay(self) -> Iterator[LogicalRecord]:
        """Yield durable records in seqno order, charging replay I/O."""
        records = sorted(self._durable, key=lambda record: record.seqno)
        nbytes = sum(record.nbytes for record in records)
        if nbytes:
            self.disk.read(0, nbytes)
        yield from records

    def crash(self) -> None:
        """Simulate a crash: buffered (un-forced) records are lost."""
        self._pending.clear()
        self._pending_bytes = 0
