"""Physical write-ahead log for metadata and space allocation.

Stasis "uses a write ahead log to manage bLSM's metadata and space
allocation; this log ensures a physically consistent version of the tree is
available at crash" (Section 4.4.2).  Index and data page contents are
*not* logged — merges force-write whole tree components through the page
file instead — so this log only carries small manifest records (which tree
components exist, their extents and key counts).

The log lives on its own simulated device so appends are strictly
sequential, as the paper expects of dedicated logging hardware
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import LogError
from repro.sim.disk import SimDisk

_RECORD_OVERHEAD = 32  # simulated on-disk framing per log record


@dataclass(frozen=True)
class WALRecord:
    """One physical log record."""

    lsn: int
    kind: str
    payload: Any
    nbytes: int


class WriteAheadLog:
    """Append-only physical log with explicit force and truncation.

    Records appended but not yet forced are lost by a simulated crash.
    """

    def __init__(self, disk: SimDisk) -> None:
        self.disk = disk
        self._records: list[WALRecord] = []  # durable (forced) records
        self._pending: list[WALRecord] = []  # appended, not yet forced
        self._next_lsn = 0
        self._tail_offset = 0  # byte position of the log head on disk

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended record will receive."""
        return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """One past the LSN of the newest forced record."""
        return self._records[-1].lsn + 1 if self._records else 0

    def append(self, kind: str, payload: Any, nbytes: int | None = None) -> int:
        """Buffer a record; it becomes durable at the next ``force``.

        Args:
            kind: record type tag, interpreted by recovery.
            payload: arbitrary immutable payload.
            nbytes: simulated record size; estimated from ``payload`` repr
                length when omitted.

        Returns:
            The LSN assigned to the record.
        """
        if nbytes is None:
            nbytes = _RECORD_OVERHEAD + len(repr(payload))
        record = WALRecord(self._next_lsn, kind, payload, nbytes)
        self._next_lsn += 1
        self._pending.append(record)
        return record.lsn

    def force(self) -> float:
        """Write all buffered records sequentially; return service time."""
        if not self._pending:
            return 0.0
        nbytes = sum(record.nbytes for record in self._pending)
        service = self.disk.write(self._tail_offset, nbytes)
        self._tail_offset += nbytes
        self._records.extend(self._pending)
        self._pending.clear()
        return service

    def truncate(self, lsn: int) -> None:
        """Discard durable records with LSN strictly below ``lsn``."""
        if lsn > self._next_lsn:
            raise LogError(f"cannot truncate past next LSN ({lsn} > {self._next_lsn})")
        self._records = [record for record in self._records if record.lsn >= lsn]

    def records(self, from_lsn: int = 0) -> Iterator[WALRecord]:
        """Iterate durable records with LSN >= ``from_lsn`` (replay order).

        Charges a sequential read of the replayed bytes, as log replay
        does at startup (the paper notes replay "is extremely expensive").
        """
        selected = [record for record in self._records if record.lsn >= from_lsn]
        nbytes = sum(record.nbytes for record in selected)
        if nbytes:
            self.disk.read(0, nbytes)
        yield from selected

    def crash(self) -> None:
        """Simulate a crash: unforced records are lost."""
        self._pending.clear()
