"""Physical write-ahead log for metadata and space allocation.

Stasis "uses a write ahead log to manage bLSM's metadata and space
allocation; this log ensures a physically consistent version of the tree is
available at crash" (Section 4.4.2).  Index and data page contents are
*not* logged — merges force-write whole tree components through the page
file instead — so this log only carries small manifest records (which tree
components exist, their extents and key counts).

The log lives on its own simulated device so appends are strictly
sequential, as the paper expects of dedicated logging hardware
(Section 5.1).

Hardening (fault-injection layer):

* Every record carries a CRC computed at append time.  A torn force — a
  :class:`~repro.errors.CrashPoint` raised mid-write by a faulty device —
  leaves the straddling record on disk with a bad checksum; replay
  detects it and **truncates the torn tail** instead of replaying
  garbage.  A corruption mark on a record's byte range (silent decay)
  raises :class:`~repro.errors.CorruptionError` instead, because a
  mid-log manifest cannot be safely dropped.
* ``truncate`` advances a durable *head offset*, so replay reads are
  charged from the head rather than from offset 0 — the log's replay
  cost stays proportional to its live tail, not its lifetime.
* An optional :class:`~repro.faults.retry.RetryExecutor` wraps the
  force-path device writes, absorbing transient faults with backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import CorruptionError, CrashPoint, LogError
from repro.sim.disk import SimDisk
from repro.storage.checksum import CORRUPTION_MASK, payload_checksum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.retry import RetryExecutor

_RECORD_OVERHEAD = 32  # simulated on-disk framing per log record


@dataclass(frozen=True)
class WALRecord:
    """One physical log record."""

    lsn: int
    kind: str
    payload: Any
    nbytes: int
    checksum: int = 0


class WriteAheadLog:
    """Append-only physical log with explicit force and truncation.

    Records appended but not yet forced are lost by a simulated crash.
    """

    def __init__(
        self, disk: SimDisk, retry: "RetryExecutor | None" = None
    ) -> None:
        self.disk = disk
        self.retry = retry
        self._records: list[WALRecord] = []  # durable (forced) records
        self._pending: list[WALRecord] = []  # appended, not yet forced
        self._next_lsn = 0
        self._head_offset = 0  # byte position of the oldest live record
        self._tail_offset = 0  # byte position appends continue from
        self._offsets: dict[int, tuple[int, int]] = {}  # lsn -> (offset, nbytes)
        self._torn: set[int] = set()  # lsns whose write was torn mid-record
        self.torn_truncations = 0  # torn tails dropped at replay
        # Plain SimDisk can neither corrupt nor tear, so read-back
        # verification can never fail there; skip the per-append
        # checksum (hot path) on such devices.  FaultyDisk overrides
        # ``corrupted`` and keeps full checksumming.
        self._checksummed = type(disk).corrupted is not SimDisk.corrupted

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended record will receive."""
        return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """One past the LSN of the newest forced record."""
        return self._records[-1].lsn + 1 if self._records else 0

    @property
    def head_offset(self) -> int:
        """Device offset replay starts from (advanced by ``truncate``)."""
        return self._head_offset

    @property
    def live_bytes(self) -> int:
        """Bytes of durable records replay would read."""
        return sum(record.nbytes for record in self._records)

    @property
    def tail_offset(self) -> int:
        """Device offset the next force appends at."""
        return self._tail_offset

    @property
    def pending_records(self) -> int:
        """Appended records the next force will make durable."""
        return len(self._pending)

    def append(self, kind: str, payload: Any, nbytes: int | None = None) -> int:
        """Buffer a record; it becomes durable at the next ``force``.

        Args:
            kind: record type tag, interpreted by recovery.
            payload: arbitrary immutable payload.
            nbytes: simulated record size; estimated from ``payload`` repr
                length when omitted.

        Returns:
            The LSN assigned to the record.
        """
        if nbytes is None:
            nbytes = _RECORD_OVERHEAD + len(repr(payload))
        lsn = self._next_lsn
        record = WALRecord(
            lsn,
            kind,
            payload,
            nbytes,
            payload_checksum(lsn, kind, payload) if self._checksummed else 0,
        )
        self._next_lsn += 1
        self._pending.append(record)
        return record.lsn

    def force(self) -> float:
        """Write all buffered records sequentially; return service time.

        A :class:`~repro.errors.CrashPoint` raised by the device mid-write
        models a torn force: records whose bytes fully reached the device
        stay durable, the record straddling the tear stays on disk with a
        broken checksum (found at replay), and everything after it is
        lost.  The crash is re-raised — the process is dead.
        """
        if not self._pending:
            return 0.0
        nbytes = sum(record.nbytes for record in self._pending)
        offset = self._tail_offset
        try:
            service = self._write(offset, nbytes)
        except CrashPoint as crash:
            self._absorb_torn_force(offset, crash.persisted_bytes)
            raise
        cursor = offset
        for record in self._pending:
            self._offsets[record.lsn] = (cursor, record.nbytes)
            cursor += record.nbytes
        self._tail_offset += nbytes
        self._records.extend(self._pending)
        self._pending.clear()
        return service

    def _write(self, offset: int, nbytes: int) -> float:
        if self.retry is not None:
            return self.retry.run(
                lambda: self.disk.write(offset, nbytes), what="wal.force"
            )
        return self.disk.write(offset, nbytes)

    def _absorb_torn_force(self, offset: int, persisted: int) -> None:
        """Account a force interrupted after ``persisted`` bytes."""
        cursor = 0
        for record in self._pending:
            if cursor + record.nbytes <= persisted:
                # Fully on the platter before the tear: durable and intact.
                self._offsets[record.lsn] = (offset + cursor, record.nbytes)
                self._records.append(record)
            elif cursor < persisted:
                # Straddles the tear: on disk, but its checksum is broken.
                self._offsets[record.lsn] = (offset + cursor, record.nbytes)
                self._records.append(record)
                self._torn.add(record.lsn)
            # Past the tear: never reached the device.
            cursor += record.nbytes
        self._tail_offset = offset + persisted
        self._pending.clear()

    def truncate(self, lsn: int) -> None:
        """Discard durable records with LSN strictly below ``lsn``.

        Advances the durable head offset to the oldest retained record, so
        subsequent replays are charged only for the live tail.
        """
        if lsn > self._next_lsn:
            raise LogError(f"cannot truncate past next LSN ({lsn} > {self._next_lsn})")
        kept = [record for record in self._records if record.lsn >= lsn]
        for record in self._records:
            if record.lsn < lsn:
                self._offsets.pop(record.lsn, None)
                self._torn.discard(record.lsn)
        self._records = kept
        if kept:
            self._head_offset = min(
                self._offsets[r.lsn][0] for r in kept if r.lsn in self._offsets
            )
        else:
            self._head_offset = self._tail_offset

    def records(self, from_lsn: int = 0) -> Iterator[WALRecord]:
        """Iterate durable records with LSN >= ``from_lsn`` (replay order).

        Charges a sequential read of the replayed bytes from the durable
        head (the paper notes replay "is extremely expensive").  Each
        record's checksum is verified against what the device returns: a
        torn record truncates the tail (it and everything after it are
        dropped, never replayed); a corrupted record raises
        :class:`~repro.errors.CorruptionError`.
        """
        selected = [record for record in self._records if record.lsn >= from_lsn]
        nbytes = sum(record.nbytes for record in selected)
        if nbytes:
            self.disk.read(self._head_offset, nbytes)
        for record in selected:
            if self._readback_checksum(record) != record.checksum:
                if record.lsn in self._torn:
                    self._truncate_torn_tail(record.lsn)
                    return
                raise CorruptionError(
                    f"WAL record lsn={record.lsn} kind={record.kind!r} "
                    f"failed checksum verification"
                )
            yield record

    def _readback_checksum(self, record: WALRecord) -> int:
        """The checksum as recomputed from what the device returns."""
        if not self._checksummed:
            # No corruption marks exist on this device class, but a tear
            # (CrashPoint mid-force) is tracked in memory regardless of
            # checksumming — keep detecting it without recomputing CRCs.
            if record.lsn in self._torn:
                return record.checksum ^ CORRUPTION_MASK
            return record.checksum
        placement = self._offsets.get(record.lsn)
        damaged = record.lsn in self._torn or (
            placement is not None and self.disk.corrupted(*placement)
        )
        actual = payload_checksum(record.lsn, record.kind, record.payload)
        return actual ^ CORRUPTION_MASK if damaged else actual

    def _truncate_torn_tail(self, lsn: int) -> None:
        """Drop the torn record and everything after it (replay-time).

        Also rolls the tail offset back to where the torn record began:
        its partial bytes are garbage, and leaving the tail past them
        would strand dead space inside the live extent — ``live_bytes``
        would claim bytes the device no longer meaningfully holds, and
        the ``head <= record extents <= tail`` accounting invariant
        (pinned by the WAL property test) would drift.  Appends after
        recovery overwrite the torn region, exactly as a real log
        manager re-uses the tail after tail truncation.
        """
        placement = self._offsets.get(lsn)
        dropped = [record for record in self._records if record.lsn >= lsn]
        self._records = [record for record in self._records if record.lsn < lsn]
        for record in dropped:
            self._offsets.pop(record.lsn, None)
            self._torn.discard(record.lsn)
        if placement is not None:
            self._tail_offset = placement[0]
        if not self._records:
            self._head_offset = self._tail_offset
        self.torn_truncations += 1
        runtime = self.disk.runtime
        if runtime is not None:
            runtime.metrics.counter("wal.torn_tail_truncations").inc()
            runtime.trace.emit(
                "wal_torn_tail", from_lsn=lsn, dropped=len(dropped)
            )

    def crash(self) -> None:
        """Simulate a crash: unforced records are lost."""
        self._pending.clear()
