"""Fixed-size page store over a simulated device.

Pages hold immutable Python payloads (tuples of records, index entries,
metadata dictionaries) rather than serialized bytes: functional behaviour
is real, while I/O cost is charged from page geometry.  A page read or
write transfers exactly ``page_size`` bytes at the page's byte address, so
sequential page runs inside one extent are charged bandwidth only and
scattered accesses pay a seek — matching the paper's cost model.

The payload dictionary is the *durable* state: anything written here
survives a simulated crash, anything held only by the buffer manager does
not.

The paper argues (Appendix A) that 4 KB data pages are the right choice on
modern hardware; that is the default here and the page size is a knob so
the InnoDB stand-in can use the 16 KB pages the paper calls out.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PageNotFoundError
from repro.sim.disk import SimDisk

DEFAULT_PAGE_SIZE = 4096


class PageFile:
    """Durable page payloads addressed by page id.

    Page id ``p`` lives at byte offset ``p * page_size`` on the underlying
    device, so adjacent page ids are physically adjacent — the property the
    region allocator exists to provide.
    """

    def __init__(self, disk: SimDisk, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.disk = disk
        self.page_size = page_size
        self._pages: dict[int, Any] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def read_page(self, page_id: int) -> Any:
        """Read a page payload, charging one page of device read I/O."""
        try:
            payload = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        self.disk.read(page_id * self.page_size, self.page_size)
        return payload

    def write_page(self, page_id: int, payload: Any) -> None:
        """Write a page payload, charging one page of device write I/O."""
        if page_id < 0:
            raise ValueError(f"page_id must be non-negative, got {page_id}")
        self.disk.write(page_id * self.page_size, self.page_size)
        self._pages[page_id] = payload

    def read_run(self, first_page_id: int, count: int) -> list[Any]:
        """Read ``count`` consecutive pages as one contiguous transfer.

        Merges batch their I/O (the paper's arrays use 512 KB stripes), so
        a run of pages costs at most one seek plus bandwidth.
        """
        if count <= 0:
            return []
        payloads = []
        for page_id in range(first_page_id, first_page_id + count):
            try:
                payloads.append(self._pages[page_id])
            except KeyError:
                raise PageNotFoundError(page_id) from None
        self.disk.read(first_page_id * self.page_size, count * self.page_size)
        return payloads

    def write_run(self, first_page_id: int, payloads: list[Any]) -> None:
        """Write consecutive pages as one contiguous transfer."""
        if not payloads:
            return
        if first_page_id < 0:
            raise ValueError(
                f"first_page_id must be non-negative, got {first_page_id}"
            )
        self.disk.write(
            first_page_id * self.page_size, len(payloads) * self.page_size
        )
        for i, payload in enumerate(payloads):
            self._pages[first_page_id + i] = payload

    def free_page(self, page_id: int) -> None:
        """Drop a page's durable payload (no I/O charged, like TRIM)."""
        self._pages.pop(page_id, None)

    def peek(self, page_id: int) -> Any:
        """Read a payload without charging I/O (test/recovery helper)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
