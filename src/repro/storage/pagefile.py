"""Fixed-size page store over a simulated device.

Pages hold immutable Python payloads (tuples of records, index entries,
metadata dictionaries) rather than serialized bytes: functional behaviour
is real, while I/O cost is charged from page geometry.  A page read or
write transfers exactly ``page_size`` bytes at the page's byte address, so
sequential page runs inside one extent are charged bandwidth only and
scattered accesses pay a seek — matching the paper's cost model.

The payload dictionary is the *durable* state: anything written here
survives a simulated crash, anything held only by the buffer manager does
not.

The paper argues (Appendix A) that 4 KB data pages are the right choice on
modern hardware; that is the default here and the page size is a knob so
the InnoDB stand-in can use the 16 KB pages the paper calls out.

Hardening (fault-injection layer): every page carries a checksum stored
at write time and verified on every charged read — a read of a page whose
byte range the device corrupted, or whose write was torn mid-page, raises
:class:`~repro.errors.CorruptionError` instead of returning silently
wrong data.  A write run torn by a :class:`~repro.errors.CrashPoint`
keeps the fully-persisted prefix of pages durable and leaves the
straddling page corrupt-marked.  An optional
:class:`~repro.faults.retry.RetryExecutor` absorbs transient device
errors with backoff; all buffer-manager and merge I/O rides on this
class, so hardening here hardens those paths too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import CorruptionError, CrashPoint, PageNotFoundError
from repro.sim.disk import SimDisk
from repro.storage.checksum import CORRUPTION_MASK, payload_checksum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.retry import RetryExecutor

DEFAULT_PAGE_SIZE = 4096


class PageFile:
    """Durable page payloads addressed by page id.

    Page id ``p`` lives at byte offset ``p * page_size`` on the underlying
    device, so adjacent page ids are physically adjacent — the property the
    region allocator exists to provide.
    """

    def __init__(
        self,
        disk: SimDisk,
        page_size: int = DEFAULT_PAGE_SIZE,
        retry: "RetryExecutor | None" = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.disk = disk
        self.page_size = page_size
        self.retry = retry
        self._pages: dict[int, Any] = {}
        self._sums: dict[int, int] = {}  # page id -> stored checksum
        self.corrupt_reads = 0
        # Checksums exist to detect device damage, and a device that
        # never corrupts (plain SimDisk: ``corrupted`` is constant-False
        # and ``mark_corrupt`` a no-op) can never fail verification —
        # so computing a checksum per page write and recomputing it per
        # page read would be pure hot-path overhead.  Only fault-capable
        # devices (FaultyDisk overrides ``corrupted``) pay for it.
        self._checksummed = type(disk).corrupted is not SimDisk.corrupted

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def _io(self, op: Callable[[], float], what: str) -> float:
        if self.retry is not None:
            return self.retry.run(op, what=what)
        return op()

    def read_page(self, page_id: int) -> Any:
        """Read a page payload, charging one page of device read I/O.

        Raises:
            CorruptionError: the page's stored checksum no longer matches
                what the device returns (silent decay or a torn write).
        """
        try:
            payload = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        self._io(
            lambda: self.disk.read(page_id * self.page_size, self.page_size),
            what="pagefile.read",
        )
        self._verify(page_id, payload)
        return payload

    def write_page(self, page_id: int, payload: Any) -> None:
        """Write a page payload, charging one page of device write I/O.

        A :class:`~repro.errors.CrashPoint` mid-write leaves the page
        torn: its payload is on disk but corrupt-marked, so a later read
        fails its checksum instead of returning a half-written page.
        """
        if page_id < 0:
            raise ValueError(f"page_id must be non-negative, got {page_id}")
        offset = page_id * self.page_size
        try:
            self._io(
                lambda: self.disk.write(offset, self.page_size),
                what="pagefile.write",
            )
        except CrashPoint as crash:
            if crash.persisted_bytes > 0:
                self._pages[page_id] = payload
                self._sums[page_id] = payload_checksum(page_id, payload)
                self.disk.mark_corrupt(offset, self.page_size)
            raise
        self._pages[page_id] = payload
        if self._checksummed:
            self._sums[page_id] = payload_checksum(page_id, payload)

    def read_run(self, first_page_id: int, count: int) -> list[Any]:
        """Read ``count`` consecutive pages as one contiguous transfer.

        Merges batch their I/O (the paper's arrays use 512 KB stripes), so
        a run of pages costs at most one seek plus bandwidth.  Every page
        in the run is checksum-verified.
        """
        if count <= 0:
            return []
        payloads = []
        for page_id in range(first_page_id, first_page_id + count):
            try:
                payloads.append(self._pages[page_id])
            except KeyError:
                raise PageNotFoundError(page_id) from None
        self._io(
            lambda: self.disk.read(
                first_page_id * self.page_size, count * self.page_size
            ),
            what="pagefile.read_run",
        )
        for i, payload in enumerate(payloads):
            self._verify(first_page_id + i, payload)
        return payloads

    def write_run(self, first_page_id: int, payloads: list[Any]) -> None:
        """Write consecutive pages as one contiguous transfer.

        A :class:`~repro.errors.CrashPoint` mid-run keeps the pages whose
        bytes fully reached the device durable; the page straddling the
        tear is stored corrupt-marked (its checksum will fail on read);
        later pages never reach the device.
        """
        if not payloads:
            return
        if first_page_id < 0:
            raise ValueError(
                f"first_page_id must be non-negative, got {first_page_id}"
            )
        offset = first_page_id * self.page_size
        try:
            self._io(
                lambda: self.disk.write(offset, len(payloads) * self.page_size),
                what="pagefile.write_run",
            )
        except CrashPoint as crash:
            whole = crash.persisted_bytes // self.page_size
            for i, payload in enumerate(payloads[:whole]):
                self._pages[first_page_id + i] = payload
                self._sums[first_page_id + i] = payload_checksum(
                    first_page_id + i, payload
                )
            if crash.persisted_bytes % self.page_size and whole < len(payloads):
                torn_id = first_page_id + whole
                self._pages[torn_id] = payloads[whole]
                self._sums[torn_id] = payload_checksum(torn_id, payloads[whole])
                self.disk.mark_corrupt(
                    torn_id * self.page_size, self.page_size
                )
            raise
        if self._checksummed:
            for i, payload in enumerate(payloads):
                self._pages[first_page_id + i] = payload
                self._sums[first_page_id + i] = payload_checksum(
                    first_page_id + i, payload
                )
        else:
            for i, payload in enumerate(payloads):
                self._pages[first_page_id + i] = payload

    def _verify(self, page_id: int, payload: Any) -> None:
        if not self._checksummed:
            return
        stored = self._sums.get(page_id)
        if stored is None:
            # Pre-checksum page (or direct dict poke in a test): trust it.
            return
        actual = payload_checksum(page_id, payload)
        if self.disk.corrupted(page_id * self.page_size, self.page_size):
            actual ^= CORRUPTION_MASK
        if actual != stored:
            self.corrupt_reads += 1
            runtime = self.disk.runtime
            if runtime is not None:
                runtime.metrics.counter("pagefile.corrupt_reads").inc()
                runtime.trace.emit("page_corrupt", page_id=page_id)
            raise CorruptionError(
                f"page {page_id} failed checksum verification"
            )

    def free_page(self, page_id: int) -> None:
        """Drop a page's durable payload (no I/O charged, like TRIM)."""
        self._pages.pop(page_id, None)
        self._sums.pop(page_id, None)

    def peek(self, page_id: int) -> Any:
        """Read a payload without charging I/O (test/recovery helper)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
