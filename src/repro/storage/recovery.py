"""Crash recovery helpers.

Recovery proceeds in two phases, per Section 4.4.2:

1. The physical WAL yields the newest committed manifest, giving a
   physically consistent set of on-disk tree components (merges commit
   atomically, so a torn merge simply never appears in the manifest).
2. The logical log is replayed to rebuild the in-memory component (C0)
   from the writes that had not yet reached a durable tree.  In the
   degraded ``NONE`` durability mode this phase is empty and those writes
   are lost — "older (up to a well-defined point in time) updates are
   available, but recent updates may be lost".

Bloom filters are *not* persisted (Section 4.4.3); the engine rebuilds
them from tree component metadata after recovery.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.storage.logical_log import LogicalRecord
from repro.storage.stasis import Stasis

ReplayFn = Callable[[LogicalRecord], None]


def recover(stasis: Stasis, apply_record: ReplayFn) -> Any:
    """Run both recovery phases and return the recovered manifest.

    Args:
        stasis: the crashed storage substrate.
        apply_record: engine callback that re-applies one logical record
            (typically by re-inserting it into a fresh memtable).

    Returns:
        The newest committed manifest payload.
    """
    manifest = stasis.recover_manifest()
    for record in stasis.logical_log.replay():
        apply_record(record)
    return manifest
