"""The Stasis facade: one object owning the whole storage stack.

Engines construct a :class:`Stasis` and get a shared virtual clock, a data
device with a page file, buffer manager and region allocator, and two logs
on a dedicated log device (physical WAL for the tree manifest, logical log
for individual writes) — the architecture of Section 4.4.2.

A *manifest* is the engine's durable root metadata (which tree components
exist, their extents, key counts and timestamps).  ``commit_manifest``
makes a new manifest durable atomically: it appends one WAL record and
forces the WAL, mirroring how "Stasis ensures each tree merge runs in its
own atomic and durable transaction".

Fault injection: pass a :class:`~repro.faults.plan.FaultPlan` and both
devices become :class:`~repro.faults.disk.FaultyDisk` instances sharing
the plan (so access indices count globally across data and log I/O — the
crash-point harness enumerates one boundary sequence).  A
:class:`~repro.faults.retry.RetryPolicy` (defaulted when a plan is
present) is bound to the clock as a
:class:`~repro.faults.retry.RetryExecutor` and threaded through the page
file and both logs' force paths, which transitively hardens the buffer
manager and merge I/O.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RecoveryError
from repro.faults.disk import FaultyDisk
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryExecutor, RetryPolicy
from repro.obs.runtime import EngineRuntime
from repro.sim.clock import VirtualClock
from repro.sim.disk import DiskModel, SimDisk, StripedDisk
from repro.storage.buffer import BufferManager, EvictionPolicy
from repro.storage.group_commit import GroupCommitQueue
from repro.storage.logical_log import DurabilityMode, LogicalLog
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, PageFile
from repro.storage.region import RegionAllocator
from repro.storage.wal import WriteAheadLog

_MANIFEST_KIND = "manifest"


class Stasis:
    """Transactional storage substrate over simulated devices."""

    def __init__(
        self,
        disk_model: DiskModel | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool_pages: int = 1024,
        eviction_policy: EvictionPolicy = EvictionPolicy.CLOCK,
        durability: DurabilityMode = DurabilityMode.ASYNC,
        clock: VirtualClock | None = None,
        runtime: EngineRuntime | None = None,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        capacity_bytes: int | None = None,
        log_disk_model: DiskModel | None = None,
        data_stripes: int = 1,
        stripe_chunk_bytes: int = 512 * 1024,
        observability: bool = True,
    ) -> None:
        model = disk_model if disk_model is not None else DiskModel.hdd()
        log_model = log_disk_model if log_disk_model is not None else model
        if data_stripes < 1:
            raise ValueError(f"data_stripes must be >= 1, got {data_stripes}")
        if runtime is None:
            runtime = EngineRuntime(clock=clock, observability=observability)
        elif clock is not None and runtime.clock is not clock:
            raise ValueError("runtime and clock arguments disagree")
        self.runtime = runtime
        self.clock = runtime.clock
        self.fault_plan = fault_plan
        if fault_plan is not None:
            if data_stripes > 1:
                raise ValueError(
                    "fault injection is not supported on a striped data "
                    "device (the crash-point harness needs one serial "
                    "access sequence)"
                )
            self.data_disk: SimDisk = FaultyDisk(
                model,
                self.clock,
                name=f"{model.name}-data",
                runtime=runtime,
                capacity_bytes=capacity_bytes,
                plan=fault_plan,
            )
            self.log_disk: SimDisk = FaultyDisk(
                model,
                self.clock,
                name=f"{log_model.name}-log",
                runtime=runtime,
                plan=fault_plan,
            )
            if retry is None:
                retry = RetryPolicy()
        elif data_stripes > 1:
            self.data_disk = StripedDisk(
                model,
                self.clock,
                stripes=data_stripes,
                chunk_bytes=stripe_chunk_bytes,
                name=f"{model.name}-data",
                runtime=runtime,
                capacity_bytes=capacity_bytes,
            )
            self.log_disk = SimDisk(
                log_model, self.clock, name=f"{log_model.name}-log", runtime=runtime
            )
        else:
            self.data_disk = SimDisk(
                model,
                self.clock,
                name=f"{model.name}-data",
                runtime=runtime,
                capacity_bytes=capacity_bytes,
            )
            self.log_disk = SimDisk(
                log_model, self.clock, name=f"{log_model.name}-log", runtime=runtime
            )
        self.retry_policy = retry
        self.retry = (
            RetryExecutor(retry, self.clock, runtime=runtime)
            if retry is not None
            else None
        )
        self.pagefile = PageFile(self.data_disk, page_size, retry=self.retry)
        self.buffer = BufferManager(
            self.pagefile, buffer_pool_pages, eviction_policy, runtime=runtime
        )
        self.regions = RegionAllocator()
        self.wal = WriteAheadLog(self.log_disk, retry=self.retry)
        self.logical_log = LogicalLog(self.log_disk, durability, retry=self.retry)
        self.group_commit = GroupCommitQueue(self)
        self._committed_manifest: Any = None

    @property
    def page_size(self) -> int:
        return self.pagefile.page_size

    def commit_manifest(self, manifest: Any) -> None:
        """Durably install a new manifest (one forced WAL record)."""
        self.wal.append(_MANIFEST_KIND, manifest)
        self.wal.force()
        self._committed_manifest = manifest

    def recover_manifest(self) -> Any:
        """Return the newest durable manifest, replaying the WAL.

        Raises:
            RecoveryError: if no manifest was ever committed.
        """
        manifest = None
        for record in self.wal.records():
            if record.kind == _MANIFEST_KIND:
                manifest = record.payload
        if manifest is None:
            raise RecoveryError("no committed manifest found in the WAL")
        return manifest

    def checkpoint_wal(self) -> None:
        """Truncate the WAL to only the newest manifest record."""
        if self._committed_manifest is None:
            return
        keep_lsn = self.wal.append(_MANIFEST_KIND, self._committed_manifest)
        self.wal.force()
        self.wal.truncate(keep_lsn)

    def crash(self) -> None:
        """Simulate a crash: volatile state is lost, durable state kept.

        Drops the buffer pool (dirty pages included) and un-forced log
        tails.  The page file and forced log records survive.
        """
        self.buffer.drop_all()
        self.wal.crash()
        self.logical_log.crash()
        self.group_commit.crash()

    def io_summary(self) -> dict[str, Any]:
        """Combined device counters, for benchmark reporting.

        Values come from the shared :class:`MetricsRegistry` — the same
        numbers any caller can read via ``runtime.metrics`` — so this is
        a convenience view, not a separate accounting.
        """
        metrics = self.runtime.metrics
        data = f"disk.{self.data_disk.name}"
        log = f"disk.{self.log_disk.name}"
        # Background work can be queued beyond the foreground clock; the
        # observation window ends at the furthest device horizon.
        elapsed = max(
            self.clock.now, self.data_disk.busy_until, self.log_disk.busy_until
        )
        busy = metrics.value(f"{data}.busy_seconds") + metrics.value(
            f"{log}.busy_seconds"
        )
        bg_busy = metrics.value(f"{data}.bg_busy_seconds") + metrics.value(
            f"{log}.bg_busy_seconds"
        )
        return {
            "data_seeks": int(metrics.value(f"{data}.seeks")),
            "data_bytes_read": int(metrics.value(f"{data}.bytes_read")),
            "data_bytes_written": int(metrics.value(f"{data}.bytes_written")),
            "log_bytes_written": int(metrics.value(f"{log}.bytes_written")),
            "busy_seconds": busy,
            "fg_busy_seconds": busy - bg_busy,
            "bg_busy_seconds": bg_busy,
            "fg_wait_seconds": metrics.value(f"{data}.fg_wait_seconds")
            + metrics.value(f"{log}.fg_wait_seconds"),
            "data_utilization": (
                metrics.value(f"{data}.busy_seconds") / elapsed
                if elapsed > 0
                else 0.0
            ),
            "log_utilization": (
                metrics.value(f"{log}.busy_seconds") / elapsed
                if elapsed > 0
                else 0.0
            ),
            "buffer_hit_rate": self.buffer.hit_rate,
        }
