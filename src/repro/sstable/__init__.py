"""Append-only on-disk tree components (Section 2.3).

Each component is a sorted run of records laid out in one contiguous
extent, with an in-RAM index of first-keys (the paper assumes index nodes
fit in memory; read fanout is computed from leaf-page cache only) and an
optional Bloom filter sized for a sub-1 % false positive rate.
"""

from repro.sstable.builder import SSTableBuilder
from repro.sstable.iterator import kway_merge, merge_records
from repro.sstable.reader import SSTable

__all__ = ["SSTable", "SSTableBuilder", "kway_merge", "merge_records"]
