"""Reading on-disk tree components.

An :class:`SSTable` is an immutable sorted run of records.  Its block
index (first key, page location per block) lives in RAM — the paper's
read-fanout analysis (Section 2.1, Appendix A) assumes index nodes fit in
memory and counts only leaf-page cache — so an uncached point lookup costs
exactly one block read: one seek plus the block's pages.

Two read paths exist:

* ``get``/``scan`` go through the buffer manager (application reads).
* ``iter_records`` bypasses the buffer manager and reads page runs in
  large chunks (merge reads; the paper pins merge pages separately from
  the application cache and batches iterator operations, Section 4.4.1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.bloom import BloomFilter
from repro.records import Record
from repro.storage.region import Extent
from repro.storage.stasis import Stasis


@dataclass(frozen=True)
class Block:
    """One indexed unit: ``npages`` consecutive pages holding records.

    The record tuple is stored on the first page; continuation pages exist
    so that records larger than a page are charged their true transfer
    size (the paper's append-only data page format stores records that
    span multiple pages).
    """

    first_key: bytes
    first_page_id: int
    npages: int
    nrecords: int


class SSTable:
    """An immutable on-disk tree component."""

    def __init__(
        self,
        stasis: Stasis,
        blocks: list[Block],
        extents: list[Extent],
        key_count: int,
        nbytes: int,
        bloom: BloomFilter | None,
        tree_id: int,
        max_key: bytes | None = None,
    ) -> None:
        self._stasis = stasis
        self.blocks = blocks
        self.extents = extents
        self.key_count = key_count
        self.nbytes = nbytes
        self.bloom = bloom
        self.tree_id = tree_id
        self._max_key = max_key
        self._first_keys = [block.first_key for block in blocks]
        self._freed = False
        self.bloom_extent: Extent | None = None
        """Where the persisted Bloom filter lives, if it was persisted."""
        metrics = stasis.runtime.metrics
        self._ctr_bloom_negative = metrics.counter("bloom.negatives")
        self._ctr_bloom_hit = metrics.counter("bloom.hits")
        self._ctr_bloom_false_positive = metrics.counter("bloom.false_positives")

    @property
    def min_key(self) -> bytes | None:
        return self.blocks[0].first_key if self.blocks else None

    @property
    def max_key(self) -> bytes | None:
        """Largest key stored, or ``None`` when empty (set by the builder)."""
        return self._max_key

    @property
    def npages(self) -> int:
        """Pages across all extents (includes alignment waste)."""
        return sum(extent.length for extent in self.extents)

    def index_ram_bytes(self, pointer_bytes: int = 8) -> int:
        """RAM the in-memory block index consumes (Appendix A).

        One (first key, page pointer, length) entry per block; this is
        the "index nodes fit in RAM" cost the read-fanout analysis
        charges.
        """
        return sum(
            len(block.first_key) + pointer_bytes + 8 for block in self.blocks
        )

    def might_contain(self, key: bytes) -> bool:
        """Bloom-filter check; conservatively ``True`` with no filter."""
        return self.bloom is None or key in self.bloom

    def get(self, key: bytes) -> Record | None:
        """Point lookup through the buffer manager.

        Checks the Bloom filter first (Section 3.1): a negative answer
        costs zero I/O; a positive answer reads exactly one block.
        """
        if not self.blocks:
            return None
        filtered = self.bloom is not None
        if filtered and key not in self.bloom:
            self._ctr_bloom_negative.inc()  # zero-I/O rejection (§3.1)
            return None
        if self._max_key is not None and key > self._max_key:
            return None
        index = bisect.bisect_right(self._first_keys, key) - 1
        if index < 0:
            return None
        records = self._read_block(self.blocks[index])
        position = bisect.bisect_left(records, key, key=lambda r: r.key)
        if position < len(records) and records[position].key == key:
            if filtered:
                self._ctr_bloom_hit.inc()
            return records[position]
        if filtered:
            self._ctr_bloom_false_positive.inc()  # paid a block read for nothing
        return None

    def scan(
        self,
        lo: bytes,
        hi: bytes | None = None,
        readahead_blocks: int = 16,
    ) -> Iterator[Record]:
        """Yield records with lo <= key < hi, through the buffer manager.

        Bloom filters do not help scans (Section 3.3); the first block
        access is the component's per-scan seek.  Blocks are read
        ``readahead_blocks`` at a time into a private readahead buffer
        (not the shared page cache, which interleaved component streams
        would thrash), so a long scan stays near-sequential per
        component — as any production scan path behaves.
        """
        if not self.blocks:
            return
        index = max(0, bisect.bisect_right(self._first_keys, lo) - 1)
        position = index
        while position < len(self.blocks):
            group = self._contiguous_group(position, readahead_blocks, hi)
            if not group:
                return
            for records in self._group_records(group):
                for record in records:
                    if record.key < lo:
                        continue
                    if hi is not None and record.key >= hi:
                        return
                    yield record
            position += len(group)

    def _contiguous_group(
        self, position: int, limit: int, hi: bytes | None
    ) -> list[Block]:
        """Up to ``limit`` physically contiguous blocks from ``position``."""
        group: list[Block] = []
        for block in self.blocks[position : position + limit]:
            if hi is not None and block.first_key >= hi:
                break
            if group and (
                group[-1].first_page_id + group[-1].npages != block.first_page_id
            ):
                break
            group.append(block)
        return group

    def _group_records(
        self, group: list[Block]
    ) -> Iterator[tuple[Record, ...]]:
        """Record tuples for a contiguous block group.

        Served from the shared cache when fully resident (free), else
        fetched as one sequential transfer into a private buffer.
        """
        first = group[0].first_page_id
        count = group[-1].first_page_id + group[-1].npages - first
        if all(
            page_id in self._stasis.buffer
            for page_id in range(first, first + count)
        ):
            for block in group:
                yield self._read_block(block)
            return
        payloads = self._stasis.pagefile.read_run(first, count)
        for block in group:
            yield payloads[block.first_page_id - first]

    def iter_records(self, chunk_pages: int = 64) -> Iterator[Record]:
        """Yield all records in order, reading page runs in large chunks.

        This is the merge read path: it bypasses the buffer manager so
        merges do not evict the application's working set, and it batches
        contiguous pages so merge reads are charged as sequential I/O.
        """
        pending: list[Block] = []
        pending_pages = 0
        for block in self.blocks:
            contiguous = (
                not pending
                or pending[-1].first_page_id + pending[-1].npages
                == block.first_page_id
            )
            if pending and (not contiguous or pending_pages >= chunk_pages):
                yield from self._drain_chunk(pending)
                pending, pending_pages = [], 0
            pending.append(block)
            pending_pages += block.npages
        if pending:
            yield from self._drain_chunk(pending)

    def free(self) -> None:
        """Release the component's extents and cached pages.

        Deleted components can never be read again, so their buffered
        pages are dropped without writeback.
        """
        if self._freed:
            return
        self._freed = True
        extents = list(self.extents)
        if self.bloom_extent is not None:
            extents.append(self.bloom_extent)
        for extent in extents:
            for page_id in range(extent.start, extent.end):
                self._stasis.buffer.invalidate(page_id)
                self._stasis.pagefile.free_page(page_id)
            self._stasis.regions.free(extent)

    def _read_block(self, block: Block) -> tuple[Record, ...]:
        records = self._stasis.buffer.get(block.first_page_id)
        for page_id in range(
            block.first_page_id + 1, block.first_page_id + block.npages
        ):
            self._stasis.buffer.get(page_id)  # charge continuation pages
        return records

    def _drain_chunk(self, blocks: list[Block]) -> Iterator[Record]:
        first = blocks[0].first_page_id
        count = blocks[-1].first_page_id + blocks[-1].npages - first
        payloads = self._stasis.pagefile.read_run(first, count)
        for block in blocks:
            records = payloads[block.first_page_id - first]
            yield from records

    def __repr__(self) -> str:
        return (
            f"SSTable(tree_id={self.tree_id}, keys={self.key_count}, "
            f"nbytes={self.nbytes}, blocks={len(self.blocks)})"
        )
