"""K-way merging of sorted record sources.

Used by tree merges (collapsing versions into one record per key) and by
scans (resolving versions into current values).  Sources are ordered by
freshness — source 0 is the newest component — which is what makes early
termination and deterministic version ordering possible (Section 3.1.1:
"updates to the same tuple are placed in tree levels consistent with their
ordering").
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.records import Record, fold


def kway_merge(
    sources: list[Iterator[Record]],
) -> Iterator[list[Record]]:
    """Merge sorted record streams, grouping versions of each key.

    Args:
        sources: per-component record iterators, **newest component
            first**; each yields records in strictly increasing key order.

    Yields:
        For each distinct key (in key order), the list of versions found,
        newest first.
    """
    heap: list[tuple[bytes, int, Record]] = []
    iterators = [iter(source) for source in sources]
    for priority, iterator in enumerate(iterators):
        record = next(iterator, None)
        if record is not None:
            heap.append((record.key, priority, record))
    heapq.heapify(heap)
    while heap:
        key = heap[0][0]
        group: list[Record] = []
        while heap and heap[0][0] == key:
            _, priority, record = heapq.heappop(heap)
            group.append(record)
            successor = next(iterators[priority], None)
            if successor is not None:
                heapq.heappush(heap, (successor.key, priority, successor))
        yield group


def merge_records(
    group: list[Record], drop_tombstones: bool = False
) -> Record | None:
    """Collapse one key's versions into the single record a merge keeps.

    Args:
        group: versions of one key, newest first.
        drop_tombstones: ``True`` when merging into the largest component
            (C2): a tombstone that survives folding has deleted every
            older version that will ever exist, so it can be discarded.

    Returns:
        The surviving record, or ``None`` if it was a droppable tombstone.
    """
    oldest_first = list(reversed(group))
    merged = oldest_first[0]
    for newer in oldest_first[1:]:
        merged = fold(newer, merged)
    if drop_tombstones and merged.is_tombstone:
        return None
    return merged
