"""Persisting Bloom filters alongside their components (Section 4.4.3).

The paper's prototype keeps filters in memory only: "they are too large
to allow us to block writers as they are synchronously written to disk",
so the authors overlap filter writeback with the next merge and defer
the merge transaction's commit until the filter is durable.  On the
virtual clock there is no separate thread to overlap with, so the write
is simply charged (sequentially) before the merge's manifest commit —
the same total I/O, the same durability point.

Persisted filters make recovery read ~1.25 bytes per key instead of
rescanning whole components (~1 KB per key): the recovery-cost ablation
measures the difference.
"""

from __future__ import annotations

import math
from typing import Any

from repro.bloom import BloomFilter
from repro.sstable.reader import SSTable
from repro.storage.region import Extent
from repro.storage.stasis import Stasis


def persist_bloom(stasis: Stasis, table: SSTable) -> None:
    """Write a component's filter to its own extent, sequentially."""
    if table.bloom is None or table.bloom_extent is not None:
        return
    data = table.bloom.to_bytes()
    page_size = stasis.page_size
    npages = max(1, math.ceil(len(data) / page_size))
    extent = stasis.regions.allocate(npages)
    payloads: list[Any] = [
        data[offset : offset + page_size]
        for offset in range(0, npages * page_size, page_size)
    ]
    stasis.pagefile.write_run(extent.start, payloads)
    table.bloom_extent = extent


def bloom_descriptor(table: SSTable) -> dict[str, Any] | None:
    """Manifest entry for a persisted filter (``None`` if not persisted)."""
    if table.bloom is None or table.bloom_extent is None:
        return None
    return {
        "extent": table.bloom_extent,
        "nbits": table.bloom.nbits,
        "nhashes": table.bloom.nhashes,
        "ninserted": table.bloom.ninserted,
        "nbytes": table.bloom.nbytes,
    }


def load_bloom(stasis: Stasis, desc: dict[str, Any]) -> BloomFilter:
    """Read a persisted filter back, charging its sequential read."""
    extent: Extent = desc["extent"]
    payloads = stasis.pagefile.read_run(extent.start, extent.length)
    data = b"".join(payloads)[: desc["nbytes"]]
    return BloomFilter.from_bytes(
        desc["nbits"], desc["nhashes"], data, desc["ninserted"]
    )
