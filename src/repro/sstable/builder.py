"""Building on-disk tree components.

A builder receives records in strictly increasing key order (merges emit
them that way), packs them into blocks, and writes blocks sequentially
into contiguous extents from the region allocator.  Output I/O is buffered
and flushed in multi-page chunks, so component construction is charged as
sequential bandwidth — the defining property of log-structured writes.

The Bloom filter is sized up front from the expected key count (the merge
knows its inputs' key counts; Section 4.4.3: "we track the number of keys
in each tree component, and size the Bloom filter for a false positive
rate below 1%").
"""

from __future__ import annotations

import math

from repro.bloom import BloomFilter
from repro.errors import StorageError
from repro.records import Record
from repro.sstable.reader import Block, SSTable
from repro.storage.region import Extent
from repro.storage.stasis import Stasis

_CONTINUATION = ("cont",)  # payload of pages 2..n of a multi-page block
_MIN_EXTENT_PAGES = 16


class SSTableBuilder:
    """Accumulates sorted records into a new :class:`SSTable`."""

    def __init__(
        self,
        stasis: Stasis,
        tree_id: int,
        expected_bytes: int = 0,
        expected_keys: int | None = None,
        with_bloom: bool = True,
        bloom_false_positive_rate: float = 0.01,
        flush_chunk_pages: int = 64,
        compression_ratio: float = 1.0,
    ) -> None:
        if not 0.0 < compression_ratio <= 1.0:
            raise ValueError(
                f"compression_ratio must be in (0, 1], got {compression_ratio}"
            )
        self._stasis = stasis
        self._tree_id = tree_id
        self._flush_chunk_pages = flush_chunk_pages
        self._page_size = stasis.page_size
        # Rose-style column compression (Section 6): records occupy
        # ratio * size on disk, shrinking merge bandwidth by a constant
        # factor without affecting reads.  Decompression cost is CPU,
        # which the device model does not charge.
        self._compression_ratio = compression_ratio
        self._bloom: BloomFilter | None = None
        if with_bloom:
            capacity = expected_keys if expected_keys else 1024
            self._bloom = BloomFilter.for_capacity(
                max(64, capacity), bloom_false_positive_rate
            )
        self._extents: list[Extent] = []
        self._next_page = 0  # next unused page id in the current extent
        self._extent_end = 0  # one past the current extent's last page
        self._blocks: list[Block] = []
        self._pending: list[tuple[int, object]] = []  # (page_id, payload)
        self._current: list[Record] = []
        self._current_bytes = 0
        self._key_count = 0
        self._nbytes = 0
        self._last_key: bytes | None = None
        self._finished = False
        if expected_bytes > 0:
            pages = math.ceil(expected_bytes * 1.05 / self._page_size)
            self._grow(max(_MIN_EXTENT_PAGES, pages))

    @property
    def nbytes(self) -> int:
        """Record payload bytes added so far."""
        return self._nbytes

    @property
    def key_count(self) -> int:
        return self._key_count

    def add(self, record: Record) -> None:
        """Append one record; keys must be strictly increasing."""
        if self._finished:
            raise StorageError("builder already finished")
        if self._last_key is not None and record.key <= self._last_key:
            raise StorageError(
                f"records must arrive in strictly increasing key order "
                f"({record.key!r} after {self._last_key!r})"
            )
        self._last_key = record.key
        self._current.append(record)
        disk_bytes = max(8, int(record.nbytes * self._compression_ratio))
        self._current_bytes += disk_bytes
        self._key_count += 1
        self._nbytes += disk_bytes
        if self._bloom is not None:
            self._bloom.add(record.key)
        if self._current_bytes >= self._page_size:
            self._close_block()

    def finish(self) -> SSTable | None:
        """Flush everything and return the component (``None`` if empty)."""
        if self._finished:
            raise StorageError("builder already finished")
        self._finished = True
        if self._current:
            self._close_block()
        self._flush_pending()
        if not self._blocks:
            for extent in self._extents:
                self._stasis.regions.free(extent)
            return None
        self._trim_tail()
        return SSTable(
            self._stasis,
            self._blocks,
            self._extents,
            self._key_count,
            self._nbytes,
            self._bloom,
            self._tree_id,
            max_key=self._last_key,
        )

    def abandon(self) -> None:
        """Discard a partially built component, freeing its space.

        Used when a merge is torn down (crash injection tests): the
        component was never committed to the manifest, so its pages are
        garbage.
        """
        self._finished = True
        for extent in self._extents:
            for page_id in range(extent.start, extent.end):
                self._stasis.pagefile.free_page(page_id)
            self._stasis.regions.free(extent)
        self._extents = []
        self._blocks = []
        self._pending = []

    def _close_block(self) -> None:
        npages = max(1, math.ceil(self._current_bytes / self._page_size))
        first_page = self._reserve(npages)
        self._blocks.append(
            Block(
                first_key=self._current[0].key,
                first_page_id=first_page,
                npages=npages,
                nrecords=len(self._current),
            )
        )
        self._pending.append((first_page, tuple(self._current)))
        for i in range(1, npages):
            self._pending.append((first_page + i, _CONTINUATION))
        self._current = []
        self._current_bytes = 0
        if len(self._pending) >= self._flush_chunk_pages:
            self._flush_pending()

    def _reserve(self, npages: int) -> int:
        """Claim ``npages`` contiguous page ids, growing extents as needed."""
        if self._next_page + npages > self._extent_end:
            # The block would straddle an extent boundary; waste the tail
            # (it is reclaimed with the extent) and start a fresh extent.
            self._flush_pending()
            self._grow(max(_MIN_EXTENT_PAGES, npages, self._estimated_growth()))
        first = self._next_page
        self._next_page += npages
        return first

    def _grow(self, pages: int) -> None:
        extent = self._stasis.regions.allocate(pages)
        self._extents.append(extent)
        self._next_page = extent.start
        self._extent_end = extent.end

    def _estimated_growth(self) -> int:
        used = sum(extent.length for extent in self._extents)
        return max(_MIN_EXTENT_PAGES, used // 4)

    def _flush_pending(self) -> None:
        """Write buffered pages, one contiguous run per transfer."""
        if not self._pending:
            return
        run_start = 0
        for i in range(1, len(self._pending) + 1):
            end_of_run = i == len(self._pending) or (
                self._pending[i][0] != self._pending[i - 1][0] + 1
            )
            if end_of_run:
                first_id = self._pending[run_start][0]
                payloads = [payload for _, payload in self._pending[run_start:i]]
                self._stasis.pagefile.write_run(first_id, payloads)
                run_start = i
        self._pending = []

    def _trim_tail(self) -> None:
        """Return the unused tail of the final extent to the allocator."""
        if not self._extents or self._next_page >= self._extent_end:
            return
        last = self._extents[-1]
        used = self._next_page - last.start
        if used <= 0:
            self._stasis.regions.free(last)
            self._extents.pop()
            return
        self._extents[-1] = self._stasis.regions.shrink(last, used)
