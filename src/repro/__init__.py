"""repro: a reproduction of *bLSM: A General Purpose Log Structured
Merge Tree* (Sears & Ramakrishnan, SIGMOD 2012).

The package provides:

* :class:`BLSM` / :class:`BLSMOptions` — the paper's three-level
  Bloom-filtered LSM-Tree with the spring-and-gear merge scheduler;
* :class:`BTreeEngine` and :class:`LevelDBEngine` — the evaluation's
  update-in-place and leveled-LSM baselines;
* :class:`ShardedEngine` — a hash/range-partitioned router over
  independent per-shard trees with a batched API (``multi_get`` /
  ``apply_batch``) whose cost is the max of per-shard device time;
* :func:`build_engine` / :data:`ENGINE_NAMES` — the engine registry
  every entry point (CLI, bench, crash harness) builds through;
* :mod:`repro.ycsb` — a YCSB-style workload generator and runner;
* :mod:`repro.sim` — the simulated devices and virtual clock everything
  runs on;
* :mod:`repro.obs` — the observability core every engine reports
  through (metrics registry, trace recorder, engine runtime);
* :mod:`repro.faults` — seeded fault injection (faulty devices, retry
  policies, crash-point enumeration) for recovery testing;
* :mod:`repro.analysis` — the paper's analytical models (read fanout,
  Figure 2, Table 2).

Quickstart::

    from repro import BLSM, BLSMOptions

    db = BLSM(BLSMOptions(c0_bytes=4 << 20))
    db.put(b"key", b"value")
    assert db.get(b"key") == b"value"
    db.close()
"""

from repro.baselines import (
    BitCaskEngine,
    BLSMEngine,
    BTreeEngine,
    KVEngine,
    LevelDBEngine,
    PartitionedBLSMEngine,
    WriteBatch,
)
from repro.core import BLSM, BLSMOptions, PartitionedBLSM
from repro.engines import ENGINE_NAMES, EngineConfig, build_engine
from repro.faults import FaultPlan, FaultRule, FaultyDisk, RetryPolicy
from repro.obs import EngineRuntime, MetricsRegistry, TraceRecorder
from repro.shard import HashPartitioner, RangePartitioner, ShardedEngine
from repro.sim import DiskModel, IOStats, SimDisk, VirtualClock
from repro.storage import DurabilityMode, EvictionPolicy, Stasis

__version__ = "1.0.0"

__all__ = [
    "BitCaskEngine",
    "BLSM",
    "BLSMEngine",
    "BLSMOptions",
    "BTreeEngine",
    "DiskModel",
    "DurabilityMode",
    "ENGINE_NAMES",
    "EngineConfig",
    "EngineRuntime",
    "EvictionPolicy",
    "FaultPlan",
    "FaultRule",
    "FaultyDisk",
    "HashPartitioner",
    "IOStats",
    "KVEngine",
    "LevelDBEngine",
    "MetricsRegistry",
    "PartitionedBLSM",
    "PartitionedBLSMEngine",
    "RangePartitioner",
    "RetryPolicy",
    "ShardedEngine",
    "SimDisk",
    "Stasis",
    "TraceRecorder",
    "VirtualClock",
    "WriteBatch",
    "build_engine",
]
