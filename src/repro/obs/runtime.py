"""The one context object every layer of an engine shares.

An :class:`EngineRuntime` bundles the virtual clock, the metrics
registry, the trace recorder and the set of simulated devices.  It is
created once (usually by :class:`~repro.storage.stasis.Stasis`) and
passed down the stack, replacing the previous ad-hoc plumbing where each
layer held its own counters and benchmarks reached into ``SimDisk.stats``
directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, TraceRecorder
from repro.sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.disk import SimDisk


class EngineRuntime:
    """Clock + disks + metrics registry + trace recorder for one engine."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        trace_capacity: int = DEFAULT_CAPACITY,
        observability: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(self.clock, capacity=trace_capacity)
        self.disks: list["SimDisk"] = []
        #: Whether per-access instrumentation (device counters, trace
        #: events) is recorded at all.  ``False`` is the hot path's
        #: no-op fast path: devices skip their metric/trace dispatch
        #: entirely and the trace recorder is disabled, while simulated
        #: timing and :class:`~repro.sim.stats.IOStats` stay identical.
        self.observability = observability
        if not observability:
            self.trace.enabled = False

    @property
    def now(self) -> float:
        """Current virtual time (convenience passthrough)."""
        return self.clock.now

    def register_disk(self, disk: "SimDisk") -> None:
        """Called by each :class:`SimDisk` built against this runtime."""
        self.disks.append(disk)

    def disk_busy_seconds(self) -> float:
        """Total device busy time across every registered disk."""
        return sum(
            self.metrics.value(f"disk.{disk.name}.busy_seconds")
            for disk in self.disks
        )

    def device_summary(self) -> list[dict[str, Any]]:
        """Per-device utilization and fg/bg attribution rows.

        Utilization is busy time over the observation window; the window
        ends at the furthest device horizon, since background work can be
        queued beyond the foreground clock.  ``backlog_seconds`` is how
        far each device's horizon is ahead of the clock right now — the
        queue depth, expressed in time.
        """
        elapsed = max(
            [self.clock.now] + [disk.busy_until for disk in self.disks]
        )
        rows: list[dict[str, Any]] = []
        for disk in self.disks:
            prefix = f"disk.{disk.name}"
            busy = self.metrics.value(f"{prefix}.busy_seconds")
            bg_busy = self.metrics.value(f"{prefix}.bg_busy_seconds")
            rows.append(
                {
                    "disk": disk.name,
                    "busy_seconds": busy,
                    "fg_busy_seconds": busy - bg_busy,
                    "bg_busy_seconds": bg_busy,
                    "fg_wait_seconds": self.metrics.value(
                        f"{prefix}.fg_wait_seconds"
                    ),
                    "bg_wait_seconds": self.metrics.value(
                        f"{prefix}.bg_wait_seconds"
                    ),
                    "utilization": busy / elapsed if elapsed > 0 else 0.0,
                    "backlog_seconds": max(
                        0.0, disk.busy_until - self.clock.now
                    ),
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"EngineRuntime(t={self.clock.now:.6f}, "
            f"disks={[d.name for d in self.disks]!r})"
        )
