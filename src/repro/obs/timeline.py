"""Shared windowed-percentile timeline math.

Latency *timelines* — per-window percentiles over virtual time — are
how production systems (and *On Performance Stability in LSM-based
Storage Systems*, Luo & Carey) surface write stalls and tail-latency
variance that end-of-run aggregates hide.  Before this module the
windowing arithmetic was re-derived in three places: the sessions
runner kept a ``dict[int, LatencyStats]`` by hand, the live-migration
bench carried its own ``_percentile`` plus a fixed-window-count
splitter, and the open-loop runner had no timeline at all.  One
implementation now serves all of them plus the stability bench
(``repro stability``), so every ``BENCH_*.json`` timeline row means the
same thing.

Two windowing styles, one sample store:

* :class:`WindowedTimeline` — fixed window *width* anchored at a base
  time; windows are discovered as samples land in them.  Right for
  live recording where the run length is unknown.
* :func:`windows_over_span` — fixed window *count* over an already
  collected ``(t, value)`` series.  Right for post-hoc slicing where a
  plot wants exactly N columns regardless of run length.

Percentiles are exact nearest-rank (windows hold modest sample counts
at simulation scale), and ``99.9`` renders as the key ``p999``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

DEFAULT_PERCENTILES = (50.0, 99.0, 99.9)


def percentile(values: Sequence[float], p: float) -> float:
    """Exact nearest-rank ``p``-th percentile (0-100) of ``values``.

    Returns 0.0 for an empty sequence; does not mutate the input.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def percentile_key(p: float) -> str:
    """The JSON key for percentile ``p``: 50 -> ``p50``, 99.9 -> ``p999``."""
    text = f"{p:g}".replace(".", "")
    return f"p{text}"


class WindowedTimeline:
    """Fixed-width windows over virtual time, with named sample channels.

    Each window accumulates raw samples per *channel* (``queue``,
    ``write``, ...) plus plain additive counters (stall seconds, event
    counts).  :meth:`rows` emits one flat dict per non-empty window:
    ``t`` (window start), then per channel ``<chan>_n`` /
    ``<chan>_p50`` / ``<chan>_p99`` / ``<chan>_p999`` / ``<chan>_max``
    (percentile set configurable) and each counter under its own name.
    """

    def __init__(
        self,
        window_seconds: float,
        base: float = 0.0,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> None:
        if window_seconds <= 0.0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        self.window_seconds = window_seconds
        self.base = base
        self.percentiles = tuple(percentiles)
        self._samples: dict[int, dict[str, list[float]]] = {}
        self._counters: dict[int, dict[str, float]] = {}

    def index_of(self, t: float) -> int:
        """The window index time ``t`` falls into (clamped at 0)."""
        return max(0, int((t - self.base) / self.window_seconds))

    def window_start(self, index: int) -> float:
        return self.base + index * self.window_seconds

    def record(self, t: float, channel: str, value: float) -> None:
        """Add one latency/value sample to ``channel``'s window at ``t``."""
        window = self._samples.setdefault(self.index_of(t), {})
        window.setdefault(channel, []).append(value)

    def add(self, t: float, counter: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into additive ``counter`` at time ``t``."""
        window = self._counters.setdefault(self.index_of(t), {})
        window[counter] = window.get(counter, 0.0) + amount

    def channel(self, index: int, channel: str) -> list[float]:
        """The raw samples of ``channel`` in window ``index`` (may be [])."""
        return list(self._samples.get(index, {}).get(channel, ()))

    def __len__(self) -> int:
        return len(self._samples.keys() | self._counters.keys())

    def rows(self) -> list[dict[str, float]]:
        """One flat summary dict per non-empty window, in time order."""
        out: list[dict[str, float]] = []
        for index in sorted(self._samples.keys() | self._counters.keys()):
            row: dict[str, float] = {
                "t": round(self.window_start(index), 9)
            }
            for channel, samples in sorted(
                self._samples.get(index, {}).items()
            ):
                row[f"{channel}_n"] = float(len(samples))
                for p in self.percentiles:
                    row[f"{channel}_{percentile_key(p)}"] = percentile(
                        samples, p
                    )
                row[f"{channel}_max"] = max(samples) if samples else 0.0
            for counter, value in sorted(
                self._counters.get(index, {}).items()
            ):
                row[counter] = value
            out.append(row)
        return out

    def channel_ceiling(self, channel: str, p: float) -> float:
        """Max over windows of ``channel``'s ``p``-th percentile.

        The *ceiling* of a windowed percentile series is the stability
        headline: a scheduler bounds write latency exactly when this
        number stays small for p = 99.9.
        """
        worst = 0.0
        for window in self._samples.values():
            samples = window.get(channel)
            if samples:
                worst = max(worst, percentile(samples, p))
        return worst


def windows_over_span(
    samples: Iterable[tuple[float, float]],
    windows: int,
    percentiles: Sequence[float] = (50.0, 99.0),
) -> list[dict[str, Any]]:
    """Slice ``(t, value)`` samples into exactly ``windows`` columns.

    The span is ``[0, t_last]``; trailing samples at or past the final
    boundary fold into the last window (the live-migration bench's
    fixed-column timeline).  Empty input yields ``[]``.  Each row is
    ``{"t": window_start, "ops": n, "p50": ..., "p99": ...}`` with the
    percentile set configurable.
    """
    ordered = sorted(samples)
    if not ordered:
        return []
    t_end = ordered[-1][0] or 1.0
    span = max(t_end / windows, 1e-9)
    out: list[dict[str, Any]] = []
    for window in range(windows):
        w_lo, w_hi = window * span, (window + 1) * span
        values = [
            value
            for t, value in ordered
            if w_lo <= t < w_hi or (window == windows - 1 and t >= w_hi)
        ]
        row: dict[str, Any] = {"t": w_lo, "ops": len(values)}
        for p in percentiles:
            row[percentile_key(p)] = percentile(values, p)
        out.append(row)
    return out
