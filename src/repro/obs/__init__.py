"""Observability core: metrics registry, trace recorder, engine runtime.

One instrumentation spine for the whole repository (see
``docs/observability.md``): every layer — simulated devices, buffer
manager, merges, schedulers, trees, the YCSB runner — reports through
the :class:`MetricsRegistry` and :class:`TraceRecorder` owned by its
engine's :class:`EngineRuntime`.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    BenchReport,
    CompareRule,
    Gate,
    ReportError,
    compare_reports,
    evaluate_gates,
    format_comparison,
    format_gate_table,
    load_report,
    new_report,
)
from repro.obs.runtime import EngineRuntime
from repro.obs.timeline import (
    WindowedTimeline,
    percentile,
    windows_over_span,
)
from repro.obs.summary import (
    StallInterval,
    events_within,
    format_device_summary,
    format_fault_summary,
    format_shard_summary,
    format_summary,
    merge_seconds_by_level,
    reconstruct_stalls,
    stall_causes,
    summarize_trace,
)
from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = [
    "BenchReport",
    "CompareRule",
    "Counter",
    "EngineRuntime",
    "Gate",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReportError",
    "StallInterval",
    "TraceEvent",
    "TraceRecorder",
    "WindowedTimeline",
    "compare_reports",
    "evaluate_gates",
    "events_within",
    "format_comparison",
    "format_gate_table",
    "load_report",
    "new_report",
    "percentile",
    "windows_over_span",
    "format_device_summary",
    "format_fault_summary",
    "format_shard_summary",
    "format_summary",
    "merge_seconds_by_level",
    "reconstruct_stalls",
    "stall_causes",
    "summarize_trace",
]
