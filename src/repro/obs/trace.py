"""Structured trace events with a bounded ring buffer and spans.

Counters say *how much*; the trace says *when and in what order*.  Every
event is stamped with the engine's virtual clock, so events from
different layers (a device transfer, a merge step, a write stall) share
one timeline and can be correlated after the run — the Figure 7 analysis
("why did this insert stall at t=412s?") becomes a query over the ring.

The recorder is deliberately cheap: one :class:`TraceEvent` per emit,
appended to a ``deque`` with ``maxlen``, so a long benchmark keeps the
newest ``capacity`` events and never grows without bound.  Spans pair a
``*_begin``/``*_end`` event around a region of virtual time and nest via
an explicit stack (``parent_id``), because simulation code is
single-threaded per engine.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.sim.clock import VirtualClock

DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """One typed event on the virtual timeline.

    Attributes:
        time: virtual seconds when the event was emitted.
        etype: event type (``disk_io``, ``merge_progress``,
            ``stall_begin``, ...); the taxonomy is documented in
            ``docs/observability.md``.
        data: event-type-specific payload fields.
    """

    time: float
    etype: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def format(self) -> str:
        """Render as one ``t=... etype key=value ...`` line."""
        fields = " ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"t={self.time:.6f} {self.etype}" + (f" {fields}" if fields else "")


class TraceRecorder:
    """A bounded ring buffer of :class:`TraceEvent`.

    ``emit`` stamps the shared virtual clock; when the ring is full the
    oldest event is evicted (``dropped`` counts how many).  ``enabled``
    turns recording off entirely for overhead-sensitive sweeps.
    """

    def __init__(
        self, clock: VirtualClock, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self.enabled = True
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._span_stack: list[int] = []
        self._next_span_id = 0

    def emit(self, etype: str, **data: Any) -> TraceEvent | None:
        """Record one event at the current virtual time."""
        if not self.enabled:
            return None
        event = TraceEvent(time=self.clock.now, etype=etype, data=data)
        self._ring.append(event)
        self._emitted += 1
        return event

    @contextmanager
    def span(self, etype: str, **data: Any) -> Iterator[int]:
        """Bracket a region of virtual time with begin/end events.

        Emits ``{etype}_begin`` on entry and ``{etype}_end`` on exit
        (with the region's virtual duration).  Both carry ``span_id``
        and ``parent_id`` so nested spans reconstruct into a tree.
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        parent_id = self._span_stack[-1] if self._span_stack else None
        start = self.clock.now
        self.emit(f"{etype}_begin", span_id=span_id, parent_id=parent_id, **data)
        self._span_stack.append(span_id)
        try:
            yield span_id
        finally:
            self._span_stack.pop()
            self.emit(
                f"{etype}_end",
                span_id=span_id,
                parent_id=parent_id,
                duration=self.clock.now - start,
                **data,
            )

    def events(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained events, oldest first (optionally one type only)."""
        if etype is None:
            return list(self._ring)
        return [e for e in self._ring if e.etype == etype]

    def clear(self) -> None:
        """Drop all retained events (the dropped count resets too)."""
        self._ring.clear()
        self._emitted = 0

    @property
    def emitted(self) -> int:
        """Events emitted since construction (or the last ``clear``)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self._emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(retained={len(self._ring)}, "
            f"dropped={self.dropped}, capacity={self.capacity})"
        )
