"""Metric primitives and the registry every subsystem reports through.

The paper diagnoses latency problems by correlating state across layers
(memtable fill, merge progress, device busy time — Section 4, Figure 7);
"On Performance Stability in LSM-based Storage Systems" (Luo & Carey)
makes the same point for LSM stalls generally.  A single
:class:`MetricsRegistry` per engine is the repository's answer: every
layer registers named counters, gauges and histograms against it, so any
benchmark can snapshot one object instead of fishing state out of
``SimDisk``, the buffer manager and the scheduler separately.

Metric names are dotted paths (``disk.hdd-data.seeks``,
``buffer.misses``, ``merge.c0c1.seconds``); the registry is flat — the
dots are a naming convention, not a hierarchy.
"""

from __future__ import annotations

import math
from typing import Any, Iterator


class Counter:
    """A monotonically increasing value (events, bytes, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """An instantaneous value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


class Histogram:
    """Geometric-bucket histogram for virtual-time durations.

    Fixed memory regardless of sample count (HDR-histogram style): each
    bucket spans a constant ratio, so percentile estimates carry bounded
    relative error.  Observations are in virtual seconds.
    """

    __slots__ = (
        "name", "_min", "_ratio", "_log_ratio", "_counts",
        "count", "sum", "max",
    )

    def __init__(
        self,
        name: str,
        min_value: float = 1e-7,
        max_value: float = 3600.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if not 0 < min_value < max_value:
            raise ValueError("require 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.name = name
        self._min = min_value
        self._ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._log_ratio = math.log(self._ratio)
        span = math.log(max_value / min_value)
        self._counts = [0] * (int(math.ceil(span / self._log_ratio)) + 2)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        self._counts[self._bucket(value)] += 1

    def _bucket(self, value: float) -> int:
        if value <= self._min:
            return 0
        index = int(math.log(value / self._min) / self._log_ratio) + 1
        return min(index, len(self._counts) - 1)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (upper bound of its bucket)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index == len(self._counts) - 1:
                    return self.max  # overflow bucket: report observed
                upper = self._min * self._ratio ** index if index else self._min
                return min(upper, self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named metrics shared by every layer of one engine.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    caller defines the metric, later callers (and readers) receive the
    same object.  Asking for an existing name as a different kind is an
    error — it means two subsystems disagree about what the name is.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a Histogram"
            )
        return metric

    def _get_or_create(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look a metric up without creating it."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a Histogram; use get()")
        return metric.value

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self, prefix: str = "") -> list[str]:
        """Registered metric names, optionally filtered by prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time view: scalars for counters/gauges, summary
        dicts for histograms.  Detached from the live metrics."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
