"""Post-run analysis of a trace: stall attribution and merge accounting.

These helpers answer the question the event taxonomy exists for: *why
did this write stall, and what was each level doing at the time?*  They
operate on the plain event list a :class:`~repro.obs.trace.TraceRecorder`
returns, so they work equally on a live engine or on events replayed
from a dump.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class StallInterval:
    """One reconstructed write stall on the virtual timeline."""

    start: float
    end: float
    cause: str
    span_id: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t <= self.end


def reconstruct_stalls(events: Iterable[TraceEvent]) -> list[StallInterval]:
    """Pair ``stall_begin``/``stall_end`` events into intervals.

    A ``stall_begin`` whose end fell off the ring (or vice versa) is
    dropped — only fully witnessed stalls are returned.
    """
    open_begins: dict[Any, TraceEvent] = {}
    stalls: list[StallInterval] = []
    for event in events:
        if event.etype == "stall_begin":
            open_begins[event.get("span_id")] = event
        elif event.etype == "stall_end":
            begin = open_begins.pop(event.get("span_id"), None)
            if begin is not None:
                stalls.append(
                    StallInterval(
                        start=begin.time,
                        end=event.time,
                        cause=str(begin.get("cause", "unknown")),
                        span_id=begin.get("span_id"),
                    )
                )
    return stalls


def events_within(
    events: Iterable[TraceEvent], start: float, end: float
) -> list[TraceEvent]:
    """Events with ``start <= time <= end``, in emission order."""
    return [e for e in events if start <= e.time <= end]


def stall_causes(stalls: Iterable[StallInterval]) -> list[tuple[str, int, float]]:
    """``(cause, count, total_seconds)`` rows, worst total first."""
    counts: TallyCounter[str] = TallyCounter()
    seconds: dict[str, float] = {}
    for stall in stalls:
        counts[stall.cause] += 1
        seconds[stall.cause] = seconds.get(stall.cause, 0.0) + stall.duration
    return sorted(
        ((cause, counts[cause], seconds[cause]) for cause in counts),
        key=lambda row: -row[2],
    )


def merge_seconds_by_level(events: Iterable[TraceEvent]) -> dict[str, float]:
    """Virtual seconds of merge work per level (from progress events)."""
    seconds: dict[str, float] = {}
    for event in events:
        if event.etype == "merge_progress":
            level = str(event.get("level", "?"))
            seconds[level] = seconds.get(level, 0.0) + float(
                event.get("seconds", 0.0)
            )
    return seconds


def summarize_trace(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Aggregate a trace into the numbers the CLI prints.

    Returns event counts by type, reconstructed stalls with their
    causes, and per-level merge time.
    """
    events = list(events)
    counts: TallyCounter[str] = TallyCounter(e.etype for e in events)
    stalls = reconstruct_stalls(events)
    return {
        "events": len(events),
        "counts_by_type": dict(sorted(counts.items())),
        "stalls": stalls,
        "stall_causes": stall_causes(stalls),
        "merge_seconds": merge_seconds_by_level(events),
        "span": (
            (events[0].time, events[-1].time) if events else (0.0, 0.0)
        ),
    }


def format_summary(events: Iterable[TraceEvent]) -> list[str]:
    """Human-readable trace summary lines for the CLI."""
    summary = summarize_trace(events)
    start, end = summary["span"]
    lines = [
        f"trace: {summary['events']} events over "
        f"[{start:.3f}s, {end:.3f}s] virtual",
        "events by type:",
    ]
    for etype, count in summary["counts_by_type"].items():
        lines.append(f"  {etype:24s} {count:>8d}")
    stalls: list[StallInterval] = summary["stalls"]
    if stalls:
        total = sum(s.duration for s in stalls)
        longest = max(stalls, key=lambda s: s.duration)
        lines.append(
            f"stalls: {len(stalls)} totalling {total * 1e3:.2f} ms "
            f"(longest {longest.duration * 1e3:.2f} ms "
            f"at t={longest.start:.3f}s)"
        )
        lines.append("top stall causes:")
        for cause, count, seconds in summary["stall_causes"]:
            lines.append(
                f"  {cause:24s} {count:>6d} stalls  {seconds * 1e3:10.2f} ms"
            )
    else:
        lines.append("stalls: none recorded")
    merge_seconds: dict[str, float] = summary["merge_seconds"]
    if merge_seconds:
        lines.append("merge time by level:")
        for level in sorted(merge_seconds):
            lines.append(
                f"  {level:24s} {merge_seconds[level] * 1e3:10.2f} ms"
            )
    return lines


def format_device_summary(runtime: Any) -> list[str]:
    """Per-device utilization and fg/bg I/O split lines for the CLI.

    One row per registered device: how busy it was over the observation
    window, how that busy time splits between synchronous foreground
    service and background merge work, and how long foreground requests
    queued behind the device's busy horizon.
    """
    rows = runtime.device_summary()
    if not rows:
        return []
    lines = ["devices (foreground vs background):"]
    lines.append(
        f"  {'device':16s} {'util':>6s} {'fg busy':>10s} {'bg busy':>10s} "
        f"{'fg wait':>10s} {'backlog':>10s}"
    )
    for row in rows:
        lines.append(
            f"  {row['disk']:16s} "
            f"{row['utilization'] * 100:5.1f}% "
            f"{row['fg_busy_seconds'] * 1e3:8.2f}ms "
            f"{row['bg_busy_seconds'] * 1e3:8.2f}ms "
            f"{row['fg_wait_seconds'] * 1e3:8.2f}ms "
            f"{row['backlog_seconds'] * 1e3:8.2f}ms"
        )
    return lines


def format_shard_summary(engine: Any) -> list[str]:
    """Per-shard load-balance rows for the CLI (sharded engines only).

    One row per shard: ops routed to it, the share of the run it spent
    servicing sub-batches (the load-balance picture — on uniform keys
    the fractions should be near-equal), its own device utilization,
    and its device counters.  Engines without a ``shard_rows`` surface
    get an empty list, so single-tree summaries stay unchanged.
    """
    shard_rows = getattr(engine, "shard_rows", None)
    if shard_rows is None:
        return []
    rows = shard_rows()
    if not rows:
        return []
    lines = ["shards (load balance and utilization):"]
    lines.append(
        f"  {'shard':>5s} {'ops':>8s} {'busy':>10s} {'share':>7s} "
        f"{'util':>6s} {'seeks':>8s} {'read':>9s} {'written':>9s}"
    )
    for row in rows:
        lines.append(
            f"  {row['shard']:>5d} {row['ops']:>8d} "
            f"{row['busy_seconds'] * 1e3:8.2f}ms "
            f"{row['busy_fraction'] * 100:5.1f}% "
            f"{row['utilization'] * 100:5.1f}% "
            f"{row['data_seeks']:>8d} "
            f"{row['data_bytes_read'] / 1e6:7.1f}MB "
            f"{row['data_bytes_written'] / 1e6:7.1f}MB"
        )
    return lines


_FAULT_METRIC_LABELS = (
    ("faults.transient_errors", "transient I/O errors"),
    ("faults.torn_writes", "torn writes"),
    ("faults.crash_points", "crash points"),
    ("faults.corruptions", "corruption marks"),
    ("faults.latency_spikes", "latency spikes"),
    ("retry.retries", "retries"),
    ("retry.exhausted", "retry budgets exhausted"),
    ("wal.torn_tail_truncations", "WAL torn tails truncated"),
    ("log.torn_records_dropped", "torn log records dropped"),
    ("pagefile.corrupt_reads", "corrupt page reads"),
)


def format_fault_summary(metrics: "MetricsRegistry") -> list[str]:
    """Fault/retry/corruption counter lines for the CLI trace summary.

    Returns an empty list when nothing fault-related ever fired, so a
    healthy run's summary stays unchanged.
    """
    rows = [
        (label, metrics.value(name, 0.0))
        for name, label in _FAULT_METRIC_LABELS
    ]
    backoff = metrics.value("retry.backoff_seconds", 0.0)
    spike = metrics.value("faults.latency_seconds", 0.0)
    if all(value == 0.0 for _, value in rows) and backoff == 0.0 and spike == 0.0:
        return []
    lines = ["faults and recovery hardening:"]
    for label, value in rows:
        if value:
            lines.append(f"  {label:24s} {int(value):>8d}")
    if backoff:
        lines.append(f"  {'retry backoff':24s} {backoff * 1e3:>8.2f} ms")
    if spike:
        lines.append(f"  {'injected latency':24s} {spike * 1e3:>8.2f} ms")
    return lines
