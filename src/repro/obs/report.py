"""The versioned bench-report envelope (every ``BENCH_*.json``).

Before this module each benchmark subcommand invented its own JSON
shape: ``BENCH_6.json`` (compaction sweep), ``BENCH_7.json`` (live
migration) and ``BENCH_8.json`` (group commit) were three incompatible
ad-hoc dicts, and every ``--assert-*`` flag re-implemented its own gate
logic inline.  This module is the one report surface the repo emits and
consumes (docs/benchmarking.md):

* :class:`BenchReport` — a schema-versioned envelope: ``bench`` name,
  run ``config`` (seed and parameters), ``meta`` (schema version, git
  revision) and named ``metrics`` blocks addressed by dotted paths.
* :func:`load_report` — loads envelopes *and* the three legacy shapes,
  upgrading them in memory so old snapshots keep parsing.
* :class:`Gate` + :func:`evaluate_gates` — the declarative assertion
  helper every CLI ``--assert-*`` flag now compiles into, printed as
  one uniform pass/fail table by :func:`format_gate_table`.
* :class:`CompareRule` + :func:`compare_reports` — the CI perf gate:
  diff a fresh report against a committed baseline and fail on
  throughput or tail-latency regressions beyond a tolerance.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

#: The envelope's schema identifier; bump VERSION on breaking changes.
SCHEMA = "repro.bench-report"
VERSION = 1

__all__ = [
    "SCHEMA",
    "VERSION",
    "BenchReport",
    "CompareRule",
    "ComparisonRow",
    "Gate",
    "GateResult",
    "ReportError",
    "compare_reports",
    "comparison_passed",
    "evaluate_gates",
    "format_comparison",
    "format_gate_table",
    "gates_passed",
    "git_revision",
    "load_report",
    "metric_value",
    "new_report",
    "upgrade_legacy",
    "validate_payload",
]


class ReportError(ValueError):
    """A payload that is not (and cannot be upgraded to) a BenchReport."""


def git_revision() -> str:
    """The repository's short git revision, or ``"unknown"``.

    Report metadata, not identity: comparisons never touch it, so a
    missing ``git`` binary or a non-repo working directory degrade to a
    placeholder instead of failing the bench.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class BenchReport:
    """One benchmark run in the repo's shared envelope.

    ``metrics`` holds named blocks (nested dicts of JSON scalars,
    lists, and sub-dicts); :meth:`value` addresses leaves by dotted
    path (``"group.forces_per_op"``), which is the coordinate system
    gates and baseline comparisons share.
    """

    bench: str
    config: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "version": VERSION,
            "bench": self.bench,
            "meta": dict(self.meta),
            "config": self.config,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchReport":
        problems = validate_payload(payload)
        if problems:
            raise ReportError(
                "invalid bench report: " + "; ".join(problems)
            )
        return cls(
            bench=payload["bench"],
            config=dict(payload.get("config", {})),
            metrics=dict(payload.get("metrics", {})),
            meta=dict(payload.get("meta", {})),
        )

    def value(self, path: str, default: Any = ...) -> Any:
        """The metric at dotted ``path``; ``default`` or KeyError if absent."""
        try:
            return metric_value(self.metrics, path)
        except KeyError:
            if default is ...:
                raise
            return default

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")


def new_report(
    bench: str,
    config: Mapping[str, Any],
    metrics: Mapping[str, Any],
    meta: Mapping[str, Any] | None = None,
) -> BenchReport:
    """A fresh report stamped with the current git revision."""
    stamped: dict[str, Any] = {"git_rev": git_revision()}
    if meta:
        stamped.update(meta)
    return BenchReport(
        bench=bench,
        config=dict(config),
        metrics=dict(metrics),
        meta=stamped,
    )


def validate_payload(payload: Mapping[str, Any]) -> list[str]:
    """Schema problems of an envelope payload ([] when valid)."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    version = payload.get("version")
    if not isinstance(version, int) or version < 1:
        problems.append(f"version is {version!r}, expected a positive int")
    elif version > VERSION:
        problems.append(
            f"version {version} is newer than this reader ({VERSION})"
        )
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append("bench name missing")
    for section in ("config", "metrics"):
        value = payload.get(section, {})
        if not isinstance(value, Mapping):
            problems.append(f"{section} is not an object")
    meta = payload.get("meta", {})
    if not isinstance(meta, Mapping):
        problems.append("meta is not an object")
    return problems


# ----------------------------------------------------------------------
# Legacy loaders (the pre-envelope BENCH_6/7/8 shapes)
# ----------------------------------------------------------------------

#: Scalar keys that were the live-migration bench's implicit config.
_LEGACY_MIGRATION_CONFIG = (
    "records", "batches", "batch", "value_bytes", "shards", "seed",
    "hot_fraction",
)


def upgrade_legacy(payload: Mapping[str, Any]) -> BenchReport:
    """Wrap a pre-envelope BENCH payload into a :class:`BenchReport`.

    Recognizes the three historical shapes by their ``bench`` tag —
    ``compaction-policy-sweep`` (BENCH_6), ``live-migration`` (BENCH_7)
    and ``sessions-group-commit`` (BENCH_8) — and normalizes them:
    config keys move under ``config``, everything else becomes metric
    blocks, and BENCH_6's policy *list* becomes a dict keyed by policy
    name so dotted paths (``policies.blsm3.read_ops_per_s``) work on
    old and new snapshots alike.  ``meta["legacy"]`` records the
    upgrade.
    """
    bench = payload.get("bench")
    if bench == "live-migration":
        config = {
            key: payload[key]
            for key in _LEGACY_MIGRATION_CONFIG
            if key in payload
        }
        metrics = {
            key: value
            for key, value in payload.items()
            if key != "bench" and key not in config
        }
    elif bench in ("compaction-policy-sweep", "sessions-group-commit"):
        config = dict(payload.get("config", {}))
        metrics = {
            key: value
            for key, value in payload.items()
            if key not in ("bench", "config")
        }
    else:
        raise ReportError(
            f"unrecognized legacy bench payload (bench={bench!r})"
        )
    policies = metrics.get("policies")
    if isinstance(policies, list):
        metrics["policies"] = {
            row["policy"]: row for row in policies if "policy" in row
        }
    return BenchReport(
        bench=str(bench),
        config=config,
        metrics=metrics,
        meta={"legacy": True, "schema_version": 0},
    )


def load_report(path: str) -> BenchReport:
    """Load a report file, upgrading legacy shapes transparently."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ReportError(f"{path}: top level is not an object")
    if "schema" in payload:
        return BenchReport.from_dict(payload)
    return upgrade_legacy(payload)


def metric_value(metrics: Mapping[str, Any], path: str) -> Any:
    """Resolve dotted ``path`` inside a metrics mapping.

    Raises KeyError naming the first missing segment, so a failed gate
    says *which* block is absent rather than just "no".
    """
    node: Any = metrics
    for segment in path.split("."):
        if not isinstance(node, Mapping) or segment not in node:
            raise KeyError(f"no metric at {path!r} (missing {segment!r})")
        node = node[segment]
    return node


# ----------------------------------------------------------------------
# Declarative gates (every CLI --assert-* flag compiles to these)
# ----------------------------------------------------------------------

_OPS = {
    "<=": lambda value, bound: value <= bound,
    ">=": lambda value, bound: value >= bound,
    "<": lambda value, bound: value < bound,
    ">": lambda value, bound: value > bound,
    "==": lambda value, bound: value == bound,
}


@dataclass(frozen=True)
class Gate:
    """One pass/fail assertion against a report metric.

    ``value(path) op bound`` — e.g. ``Gate("force amortization",
    "force_ratio", ">=", 4.0)``.  ``scale``/``unit`` only affect how
    the table renders the numbers (``1e3``/``"ms"`` for latencies).
    """

    name: str
    path: str
    op: str
    bound: float
    scale: float = 1.0
    unit: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown gate op {self.op!r}; expected one of {sorted(_OPS)}"
            )


@dataclass(frozen=True)
class GateResult:
    gate: Gate
    value: float | None
    passed: bool
    error: str = ""


def evaluate_gates(
    report: BenchReport, gates: Iterable[Gate]
) -> list[GateResult]:
    """Evaluate every gate against the report's metrics.

    A missing or non-numeric metric is a *failure* (with the error
    recorded), never a silent pass — a gate that cannot see its metric
    must not green-light CI.
    """
    results: list[GateResult] = []
    for gate in gates:
        try:
            raw = report.value(gate.path)
            value = float(raw)
        except KeyError as error:
            results.append(GateResult(gate, None, False, str(error)))
            continue
        except (TypeError, ValueError):
            results.append(
                GateResult(
                    gate, None, False,
                    f"metric at {gate.path!r} is not numeric",
                )
            )
            continue
        results.append(
            GateResult(gate, value, _OPS[gate.op](value, gate.bound))
        )
    return results


def gates_passed(results: Iterable[GateResult]) -> bool:
    return all(result.passed for result in results)


def format_gate_table(results: Sequence[GateResult]) -> list[str]:
    """The uniform pass/fail table every gated subcommand prints."""
    if not results:
        return []
    lines = [
        f"{'gate':36s}{'value':>14s}{'bound':>16s}{'result':>8s}"
    ]
    for result in results:
        gate = result.gate
        unit = f" {gate.unit}" if gate.unit else ""
        if result.value is None:
            shown = "-"
        else:
            shown = f"{result.value * gate.scale:.3f}{unit}"
        bound = f"{gate.op} {gate.bound * gate.scale:g}{unit}"
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(f"{gate.name:36s}{shown:>14s}{bound:>16s}{verdict:>8s}")
        if result.error:
            lines.append(f"  ({result.error})")
    failed = sum(1 for result in results if not result.passed)
    lines.append(
        "gates: all passed"
        if failed == 0
        else f"gates: {failed} of {len(results)} FAILED"
    )
    return lines


# ----------------------------------------------------------------------
# Baseline comparison (the CI perf gate)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CompareRule:
    """How one metric may drift between baseline and current.

    ``direction`` is which way is *better*: ``"higher"`` for
    throughput-like metrics (current may not fall more than
    ``tolerance`` below baseline), ``"lower"`` for latency-like ones
    (current may not rise more than ``tolerance`` above baseline).
    """

    path: str
    direction: str
    tolerance: float = 0.25

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(
                f"direction must be 'higher' or 'lower', "
                f"got {self.direction!r}"
            )
        if self.tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")


@dataclass(frozen=True)
class ComparisonRow:
    rule: CompareRule
    baseline: float | None
    current: float | None
    change: float | None
    """Relative change, signed toward degradation (+0.30 = 30% worse)."""
    passed: bool
    error: str = ""


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    rules: Iterable[CompareRule],
) -> list[ComparisonRow]:
    """Diff ``current`` against ``baseline`` under the given rules.

    Bench names must match (comparing a sessions report against a
    stability baseline is a configuration error, reported as a failing
    row, not an exception).  A metric missing from *current* fails its
    rule; one missing from *baseline* also fails — a silently shrinking
    baseline is how perf gates rot.
    """
    rows: list[ComparisonRow] = []
    if baseline.bench != current.bench:
        rule = CompareRule("bench", "higher", 0.0)
        rows.append(
            ComparisonRow(
                rule, None, None, None, False,
                f"bench mismatch: baseline {baseline.bench!r} "
                f"vs current {current.bench!r}",
            )
        )
        return rows
    for rule in rules:
        base: float | None = None
        cur: float | None = None
        try:
            base = float(baseline.value(rule.path))
            cur = float(current.value(rule.path))
        except KeyError as error:
            rows.append(ComparisonRow(rule, base, cur, None, False, str(error)))
            continue
        except (TypeError, ValueError):
            rows.append(
                ComparisonRow(
                    rule, base, cur, None, False,
                    f"metric at {rule.path!r} is not numeric",
                )
            )
            continue
        if base == 0.0:
            # Nothing to regress against: degradation is any nonzero
            # movement the wrong way; tolerance has no scale to bite on.
            worse = cur > 0.0 if rule.direction == "lower" else cur < 0.0
            rows.append(
                ComparisonRow(rule, base, cur, None, not worse,
                              "" if not worse else "baseline is zero")
            )
            continue
        drift = (cur - base) / abs(base)
        degradation = drift if rule.direction == "lower" else -drift
        rows.append(
            ComparisonRow(
                rule, base, cur, degradation,
                degradation <= rule.tolerance,
            )
        )
    return rows


def comparison_passed(rows: Iterable[ComparisonRow]) -> bool:
    return all(row.passed for row in rows)


def format_comparison(rows: Sequence[ComparisonRow]) -> list[str]:
    """Human-readable perf-gate table (one line per rule)."""
    if not rows:
        return ["perf gate: no rules evaluated"]
    lines = [
        f"{'metric':44s}{'baseline':>12s}{'current':>12s}"
        f"{'drift':>9s}{'result':>8s}"
    ]
    for row in rows:
        base = "-" if row.baseline is None else f"{row.baseline:.5g}"
        cur = "-" if row.current is None else f"{row.current:.5g}"
        if row.change is None:
            drift = "-"
        else:
            change = row.change + 0.0  # normalize -0.0
            sign = "+" if change >= 0 else ""
            drift = f"{sign}{change * 100:.1f}%"
        verdict = "PASS" if row.passed else "FAIL"
        lines.append(
            f"{row.rule.path:44s}{base:>12s}{cur:>12s}{drift:>9s}{verdict:>8s}"
        )
        if row.error:
            lines.append(f"  ({row.error})")
    failed = sum(1 for row in rows if not row.passed)
    lines.append(
        "perf gate: no regressions"
        if failed == 0
        else f"perf gate: {failed} of {len(rows)} rules FAILED"
    )
    return lines
