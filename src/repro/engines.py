"""The single engine registry every entry point builds engines through.

Before this module existed the CLI kept its own ``ENGINES`` tuple and
flag-to-constructor wiring while the crash-point harness kept a parallel
``_ENGINES`` + ``_build_engine`` pair; adding an engine meant editing
both (and missing one silently).  Now an engine registers once here and
appears everywhere: ``repro workload``, ``compare``, ``bench``,
``replay``, ``selfcheck`` and (for the crash-capable trees) ``repro
crashtest``.

Two surfaces, one module:

* :func:`build_engine` — name + :class:`EngineConfig` to a ready
  :class:`~repro.baselines.interface.KVEngine`.
* :func:`build_crash_tree` / :func:`recover_crash_tree` — the raw-tree
  builders the ALICE-style crash enumeration drives (only engines whose
  whole device traffic forms one serial access sequence can register
  here, hence no striped or sharded entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.baselines import (
    BitCaskEngine,
    BLSMEngine,
    BTreeEngine,
    CompactionEngine,
    KVEngine,
    LevelDBEngine,
    PartitionedBLSMEngine,
)
from repro.core.options import BLSMOptions
from repro.faults.plan import FaultPlan
from repro.shard import ShardedEngine, make_partitioner
from repro.sim.disk import DiskModel
from repro.storage.logical_log import DurabilityMode

__all__ = [
    "CRASH_ENGINE_NAMES",
    "ENGINE_NAMES",
    "EngineConfig",
    "EngineSpec",
    "blsm_options",
    "build_crash_tree",
    "build_engine",
    "crash_options",
    "engine_spec",
    "recover_crash_tree",
]


@dataclass(frozen=True)
class EngineConfig:
    """Everything an entry point can vary when building an engine.

    The CLI maps its flags onto one of these; tests construct them
    directly.  Fields irrelevant to a given engine are ignored by its
    builder (a B-Tree has no scheduler), except where ignoring them
    would mislead — fault and device-placement settings raise on
    engines that cannot honour them (see :func:`build_engine`).
    """

    disk: DiskModel = field(default_factory=DiskModel.hdd)
    c0_bytes: int = 512 * 1024
    cache_pages: int = 64
    durability: str = "async"
    compression: float = 1.0
    scheduler: str = "spring_gear"
    fault_plan: FaultPlan | None = None
    log_disk: DiskModel | None = None
    data_stripes: int = 1
    background_merges: bool = False
    shards: int = 4
    partitioner: str = "hash"
    partitioner_sample: tuple[bytes, ...] | None = None
    migration: bool = False
    seed: int = 0
    memtable: str = "skiplist"
    observability: bool = True


def blsm_options(config: EngineConfig) -> BLSMOptions:
    """The :class:`BLSMOptions` a config describes (bLSM-family only)."""
    return BLSMOptions(
        c0_bytes=config.c0_bytes,
        buffer_pool_pages=config.cache_pages,
        disk_model=config.disk,
        durability=DurabilityMode(config.durability),
        compression_ratio=config.compression,
        scheduler=config.scheduler,
        fault_plan=config.fault_plan,
        log_disk_model=config.log_disk,
        data_stripes=config.data_stripes,
        background_merges=config.background_merges,
        seed=config.seed,
        memtable=config.memtable,
        observability=config.observability,
    )


def _build_blsm(config: EngineConfig) -> KVEngine:
    return BLSMEngine(blsm_options(config))


def _build_blsm_part(config: EngineConfig) -> KVEngine:
    return PartitionedBLSMEngine(blsm_options(config))


def _build_sharded(config: EngineConfig) -> KVEngine:
    partitioner = make_partitioner(
        config.partitioner, config.shards, config.partitioner_sample
    )
    engine = ShardedEngine(
        blsm_options(config),
        shards=config.shards,
        partitioner=partitioner,
    )
    if config.migration:
        from repro.shard.migration import attach_migration

        attach_migration(engine)
    return engine


def _build_btree(config: EngineConfig) -> KVEngine:
    return BTreeEngine(
        disk_model=config.disk,
        buffer_pool_pages=max(2, config.cache_pages // 4),  # 16 KB pages
    )


def _build_bitcask(config: EngineConfig) -> KVEngine:
    return BitCaskEngine(disk_model=config.disk)


def _build_policy(config: EngineConfig, policy: str) -> KVEngine:
    return CompactionEngine(
        replace(blsm_options(config), compaction_policy=policy)
    )


def _build_leveldb(config: EngineConfig) -> KVEngine:
    return LevelDBEngine(
        disk_model=config.disk,
        memtable_bytes=max(4096, config.c0_bytes // 8),
        file_bytes=max(16 * 1024, config.c0_bytes // 2),
        level_base_bytes=2 * config.c0_bytes,
        buffer_pool_pages=config.cache_pages,
        memtable=config.memtable,
    )


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: its builder and what it can honour."""

    name: str
    build: Callable[[EngineConfig], KVEngine]
    supports_faults: bool = False
    supports_placement: bool = False
    supports_shards: bool = False


_REGISTRY: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            "blsm", _build_blsm,
            supports_faults=True, supports_placement=True,
        ),
        EngineSpec(
            "blsm-part", _build_blsm_part,
            supports_faults=True, supports_placement=True,
        ),
        EngineSpec(
            "sharded", _build_sharded,
            supports_placement=True, supports_shards=True,
        ),
        EngineSpec("btree", _build_btree),
        EngineSpec("leveldb", _build_leveldb),
        EngineSpec("bitcask", _build_bitcask),
        # The compaction design-space lab: one engine per policy, all
        # the same CompactionEngine over make_tree (docs/compaction.md).
        EngineSpec(
            "leveled",
            lambda config: _build_policy(config, "leveled"),
            supports_faults=True,
        ),
        EngineSpec(
            "tiered",
            lambda config: _build_policy(config, "tiered"),
            supports_faults=True,
        ),
        EngineSpec(
            "lazy-leveled",
            lambda config: _build_policy(config, "lazy-leveled"),
            supports_faults=True,
        ),
    )
}

#: Every registered engine name, in registration (presentation) order.
ENGINE_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def engine_spec(name: str) -> EngineSpec:
    """The registry entry for ``name``; raises on unknown engines."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}"
        ) from None


def build_engine(
    name: str, config: EngineConfig | None = None, **overrides: Any
) -> KVEngine:
    """Build a registered engine from a config (the one entry point).

    Keyword overrides are applied on top of ``config`` (or on the
    defaults when no config is given), so callers can write
    ``build_engine("sharded", shards=8)``.

    Raises:
        ValueError: unknown name, or a config requesting capabilities
            the engine lacks (fault injection on a B-Tree, device
            placement on BitCask) — the silent-ignore alternative would
            produce benchmarks that lie.
    """
    spec = engine_spec(name)
    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    if config.fault_plan is not None and not spec.supports_faults:
        raise ValueError(
            f"fault injection requires a bLSM engine, not {name!r}"
        )
    placement = (
        config.log_disk is not None
        or config.data_stripes != 1
        or config.background_merges
    )
    if placement and not spec.supports_placement:
        raise ValueError(
            "log-device/data-stripes/background-merges require a bLSM "
            f"or sharded engine, not {name!r}"
        )
    return spec.build(config)


# ----------------------------------------------------------------------
# Crash-harness surface (raw trees over one serial access sequence)
# ----------------------------------------------------------------------

#: Engines the crash-point enumeration can drive: their construction
#: accepts a shared FaultPlan and all device traffic forms one serial
#: access sequence (which is why striped and sharded engines — N
#: independent device sets — cannot appear here).
CRASH_ENGINE_NAMES: tuple[str, ...] = (
    "blsm",
    "partitioned",
    "leveled",
    "tiered",
    "lazy-leveled",
)

_CRASH_PARTITION_BYTES = 24 * 1024

_POLICY_CRASH_NAMES = ("leveled", "tiered", "lazy-leveled")


def crash_options(plan: FaultPlan | None, seed: int) -> BLSMOptions:
    """The deliberately tiny configuration crash enumeration runs.

    Small C0 and pool so a few hundred ops exercise merges, evictions
    and log truncation — the interesting crash surfaces.
    """
    return BLSMOptions(
        c0_bytes=6 * 1024,
        buffer_pool_pages=16,
        durability=DurabilityMode.SYNC,
        fault_plan=plan,
        seed=seed,
    )


def build_crash_tree(name: str, plan: FaultPlan | None, seed: int) -> Any:
    """A raw tree wired to ``plan`` for crash-point enumeration."""
    if name == "blsm":
        from repro.core.tree import BLSM

        return BLSM(crash_options(plan, seed))
    if name == "partitioned":
        from repro.core.partitioned import PartitionedBLSM

        return PartitionedBLSM(
            crash_options(plan, seed),
            max_partition_bytes=_CRASH_PARTITION_BYTES,
        )
    if name in _POLICY_CRASH_NAMES:
        from repro.core.compaction import CompactionTree

        return CompactionTree(
            replace(crash_options(plan, seed), compaction_policy=name)
        )
    raise ValueError(
        f"unknown engine {name!r}; expected one of {CRASH_ENGINE_NAMES}"
    )


def recover_crash_tree(name: str, stasis: Any, options: Any) -> Any:
    """Recover the matching tree type from a crashed substrate."""
    if name == "blsm":
        from repro.core.tree import BLSM

        return BLSM.recover(stasis, options)
    if name == "partitioned":
        from repro.core.partitioned import PartitionedBLSM

        return PartitionedBLSM.recover(
            stasis, options, max_partition_bytes=_CRASH_PARTITION_BYTES
        )
    if name in _POLICY_CRASH_NAMES:
        from repro.core.compaction import CompactionTree

        return CompactionTree.recover(stasis, options)
    raise ValueError(
        f"unknown engine {name!r}; expected one of {CRASH_ENGINE_NAMES}"
    )
