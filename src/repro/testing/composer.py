"""The fault-schedule composer: overlay crashes onto a trace.

Where the differential executor asks "does every engine agree on the
answers?", the composer asks the recovery question: "does a crash at
*any* point of this trace lose an acknowledged write?"  It drives the
same crash-capable raw trees as the ALICE-style harness in
:mod:`repro.faults.crashpoints` (``build_crash_tree`` /
``recover_crash_tree``, ``SYNC`` durability), but the workload is a
:class:`~repro.testing.trace.Trace` — so the crash surface now includes
deltas, batches, verified reads, explicit ``merge_work`` scheduling
markers (crash *during* a merge step) and explicit ``crash`` markers
(crash exactly here, recover, verify, continue).

Two entry points:

* :func:`run_crash_trace` — execute a trace once, honouring its
  ``crash`` markers and any additional :class:`FaultPlan` overlay; each
  crash recovers and verifies every acknowledged write against the
  model's durable prefix before continuing.
* :func:`enumerate_trace_crash_points` — the exhaustive sweep: crash at
  every ``every``-th device-access boundary of the trace, recover,
  verify.  The single in-flight mutation may surface as either its old
  or its new value (both are durable-by-contract); everything
  acknowledged before it must read back exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CrashPoint
from repro.faults.plan import FaultPlan
from repro.testing.trace import Trace, TraceOp

__all__ = [
    "CrashTraceOutcome",
    "CrashTraceReport",
    "enumerate_trace_crash_points",
    "run_crash_trace",
    "trace_access_count",
]

#: Acked state: value bytes, or ``None`` for deleted/never-written.
_Model = dict[bytes, "bytes | None"]
#: One in-flight mutation: (kind, key, payload).
_InFlight = "tuple[str, bytes, bytes | None] | None"


@dataclass
class CrashTraceOutcome:
    """What happened at one composed crash point."""

    access_index: int
    crashed: bool = False
    recovered: bool = False
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the recovery at this point verified cleanly."""
        return not self.failures


@dataclass
class CrashTraceReport:
    """Aggregate result of one trace crash-point enumeration."""

    engine: str
    trace_ops: int
    every: int
    seed: int
    total_accesses: int
    boundaries_tested: int = 0
    crashes_triggered: int = 0
    recoveries_verified: int = 0
    outcomes: list[CrashTraceOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashTraceOutcome]:
        """Every outcome whose recovery verification failed."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        """Whether every tested boundary recovered cleanly."""
        return not self.failures


def _registry() -> Any:
    # Lazy: the registry imports the whole engine layer above us.
    from repro import engines

    return engines


def _expected_after(
    model: _Model, in_flight: tuple[str, bytes, bytes | None]
) -> bytes | None:
    """The value the in-flight mutation would produce if it persisted."""
    kind, key, payload = in_flight
    if kind == "put":
        return payload
    if kind == "delete":
        return None
    old = model.get(key)
    return old + (payload or b"") if old is not None else None


def _verify_recovered(
    recovered: Any,
    model: _Model,
    in_flight: tuple[str, bytes, bytes | None] | None,
    failures: list[str],
    context: str,
) -> None:
    """Check every acked write (durable prefix) against the recovered tree.

    The in-flight mutation is the one op the crash interrupted: its key
    may legitimately read as the pre-op (acked) or post-op value.
    """
    in_flight_key = in_flight[1] if in_flight is not None else None
    keys = set(model)
    if in_flight_key is not None:
        keys.add(in_flight_key)
    for key in sorted(keys):
        expected = model.get(key)
        actual = recovered.get(key)
        if key == in_flight_key:
            assert in_flight is not None
            new = _expected_after(model, in_flight)
            if actual != expected and actual != new:
                failures.append(
                    f"{context}: key {key!r} -> {actual!r}, expected acked "
                    f"{expected!r} or in-flight {new!r}"
                )
        elif actual != expected:
            failures.append(
                f"{context}: key {key!r} -> {actual!r}, expected acked "
                f"{expected!r}"
            )


def _step_merge(tree: Any, budget: int) -> None:
    step = getattr(tree, "step_m01", None) or getattr(tree, "merge_step", None)
    if step is not None:
        step(budget)


def _mutations_of(op: TraceOp):
    """The mutation stream of one trace op (batch ops flatten)."""
    if op.kind in ("put", "delete", "delta"):
        yield (op.kind, op.key, op.value if op.kind != "delete" else None)
    elif op.kind == "batch":
        for kind, key, value in op.mutations:
            yield (kind, key, value)


def _apply_mutation(
    tree: Any, model: _Model, kind: str, key: bytes, payload: bytes | None
) -> None:
    if kind == "put":
        tree.put(key, payload)
        model[key] = payload
    elif kind == "delete":
        tree.delete(key)
        model[key] = None
    else:
        tree.apply_delta(key, payload or b"")
        old = model.get(key)
        if old is not None:
            model[key] = old + (payload or b"")


def trace_access_count(
    trace: Trace, engine: str = "blsm", seed: int = 0
) -> int:
    """Device accesses one full run of the trace performs.

    These are the crash candidates :func:`enumerate_trace_crash_points`
    sweeps; construction, recovery at ``crash`` markers and the final
    close run disarmed so the count is workload-anchored (access ``k``
    names the same boundary in every run).
    """
    registry = _registry()
    plan = FaultPlan(seed=seed, armed=False)
    tree = registry.build_crash_tree(engine, plan, seed)
    failures: list[str] = []
    plan.arm()
    tree = _run(tree, trace, {}, plan, engine, failures, verify_reads=False)
    plan.disarm()
    tree.close()
    return plan.access_count


def _run(
    tree: Any,
    trace: Trace,
    model: _Model,
    plan: FaultPlan,
    engine: str,
    failures: list[str],
    verify_reads: bool = True,
    set_in_flight: Callable[[Any], None] | None = None,
) -> Any:
    """Execute a trace on a raw tree, honouring ``crash`` markers.

    Mutations keep ``model`` as the acked-write record; reads are
    verified against it when ``verify_reads``; ``crash`` markers crash
    the substrate (with the overlay plan disarmed so recovery I/O fires
    nothing), recover, verify the whole acked state and continue on the
    recovered tree, which is returned.
    """
    registry = _registry()
    note = set_in_flight if set_in_flight is not None else (lambda value: None)
    for index, op in enumerate(trace):
        if op.kind == "crash":
            plan.disarm()
            tree.stasis.crash()
            tree = registry.recover_crash_tree(engine, tree.stasis, tree.options)
            _verify_recovered(
                tree, model, None, failures, f"op {index} (crash marker)"
            )
            plan.arm()
            continue
        if op.kind == "merge_work":
            _step_merge(tree, op.budget)
            continue
        if op.kind == "get":
            actual = tree.get(op.key)
            if verify_reads and actual != model.get(op.key):
                failures.append(
                    f"op {index}: get {op.key!r} -> {actual!r}, expected "
                    f"{model.get(op.key)!r}"
                )
            continue
        if op.kind == "multi_get":
            for key in op.keys:
                actual = tree.get(key)
                if verify_reads and actual != model.get(key):
                    failures.append(
                        f"op {index}: multi_get {key!r} -> {actual!r}, "
                        f"expected {model.get(key)!r}"
                    )
            continue
        if op.kind == "scan":
            rows = list(tree.scan(op.key, op.hi, op.limit))
            if verify_reads:
                expected = sorted(
                    (key, value)
                    for key, value in model.items()
                    if value is not None
                    and key >= op.key
                    and (op.hi is None or key < op.hi)
                )
                if op.limit is not None:
                    expected = expected[: op.limit]
                if rows != expected:
                    failures.append(
                        f"op {index}: scan diverged "
                        f"({len(rows)} rows vs {len(expected)} expected)"
                    )
            continue
        for kind, key, payload in _mutations_of(op):
            note((kind, key, payload))
            _apply_mutation(tree, model, kind, key, payload)
            note(None)
    return tree


def run_crash_trace(
    trace: Trace,
    engine: str = "blsm",
    seed: int = 0,
    plan: FaultPlan | None = None,
) -> list[str]:
    """Execute a trace on a crash-capable tree; return verification failures.

    ``crash`` markers in the trace crash/recover/verify inline.  An
    optional ``plan`` overlay (built disarmed; armed for the workload)
    composes additional scheduled faults on top; if it kills the process
    (:class:`CrashPoint`), the store is recovered and the acked state
    verified one final time — the trace's remaining ops are dead, as
    they would be on real hardware.
    """
    registry = _registry()
    if plan is None:
        plan = FaultPlan(seed=seed, armed=False)
    tree = registry.build_crash_tree(engine, plan, seed)
    model: _Model = {}
    failures: list[str] = []
    in_flight: list[Any] = [None]

    def note(value: Any) -> None:
        in_flight[0] = value

    plan.arm()
    try:
        tree = _run(
            tree, trace, model, plan, engine, failures, set_in_flight=note
        )
    except CrashPoint:
        plan.disarm()
        tree.stasis.crash()
        recovered = registry.recover_crash_tree(
            engine, tree.stasis, tree.options
        )
        _verify_recovered(
            recovered, model, in_flight[0], failures, "overlay crash"
        )
        recovered.close()
        return failures
    plan.disarm()
    tree.close()
    return failures


def enumerate_trace_crash_points(
    trace: Trace,
    engine: str = "blsm",
    every: int = 1,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> CrashTraceReport:
    """Crash at every ``every``-th I/O boundary of a trace; recover; verify.

    The trace-driven generalization of
    :func:`repro.faults.crashpoints.enumerate_crash_points`: the same
    disarmed-construction discipline, but the workload may now contain
    deltas, batches, reads and merge markers, so crash points land
    inside every operation family the trace format can express.
    """
    registry = _registry()
    if engine not in registry.CRASH_ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{registry.CRASH_ENGINE_NAMES}"
        )
    if every <= 0:
        raise ValueError(f"every must be positive, got {every}")
    total = trace_access_count(trace, engine, seed=seed)
    report = CrashTraceReport(
        engine=engine,
        trace_ops=len(trace),
        every=every,
        seed=seed,
        total_accesses=total,
    )
    for access in range(1, total + 1, every):
        outcome = CrashTraceOutcome(access_index=access)
        plan = FaultPlan.crash_at(access, seed=seed, armed=False)
        tree = registry.build_crash_tree(engine, plan, seed)
        model: _Model = {}
        in_flight: list[Any] = [None]
        plan.arm()
        try:
            tree = _run(
                tree, trace, model, plan, engine, outcome.failures,
                set_in_flight=lambda value: in_flight.__setitem__(0, value),
            )
        except CrashPoint:
            outcome.crashed = True
        finally:
            plan.disarm()
        if outcome.crashed:
            report.crashes_triggered += 1
            tree.stasis.crash()
            recovered = registry.recover_crash_tree(
                engine, tree.stasis, tree.options
            )
            outcome.recovered = True
            _verify_recovered(
                recovered, model, in_flight[0], outcome.failures,
                f"access {access}",
            )
            recovered.close()
        else:
            _verify_recovered(
                tree, model, None, outcome.failures, f"access {access}"
            )
            tree.close()
        if outcome.ok and outcome.recovered:
            report.recoveries_verified += 1
        report.boundaries_tested += 1
        report.outcomes.append(outcome)
        if progress is not None and access % 50 == 1:
            progress(
                f"crash-compose[{engine}]: boundary {access}/{total}, "
                f"{len(report.failures)} failures"
            )
    return report
