"""Conformance testing: model checks, traces, differential fuzzing.

The package has two generations of machinery that share one philosophy —
a plain Python ``dict`` is the specification, and every engine must
agree with it:

* the **model checkers** (:mod:`repro.testing.model`, the original
  ``repro.testing`` module): seeded workload runners, full-state
  verification, and structural deep checks of the bLSM tree, the
  partitioned tree and the sharded engine;
* the **trace harness** (PR 5): a serializable operation-trace format
  (:mod:`~repro.testing.trace`), a differential executor replaying one
  trace through every registry engine against a dictionary oracle
  (:mod:`~repro.testing.differential`), a fault-schedule composer
  overlaying crash points onto traces
  (:mod:`~repro.testing.composer`), a greedy trace minimizer filing
  shrunk repros into ``tests/corpus/`` (:mod:`~repro.testing.minimize`),
  and the ``repro fuzz`` orchestration loop
  (:mod:`~repro.testing.harness`).

Everything re-exports here, so ``from repro.testing import ...`` keeps
working for the old names and picks up the new surface.
"""

from repro.testing.broken import BrokenEngine
from repro.testing.composer import (
    CrashTraceOutcome,
    CrashTraceReport,
    enumerate_trace_crash_points,
    run_crash_trace,
    trace_access_count,
)
from repro.testing.differential import (
    Divergence,
    FuzzConfig,
    TraceOracle,
    default_fuzz_configs,
    run_differential,
    run_trace,
)
from repro.testing.harness import (
    FAULT_MODES,
    FuzzReport,
    format_fuzz_report,
    fuzz,
    replay_corpus,
    replay_corpus_file,
)
from repro.testing.minimize import minimize_trace, write_corpus_file
from repro.testing.model import (
    check_blsm_invariants,
    check_partitioned_invariants,
    check_sharded_invariants,
    crash_recover_check,
    run_model_workload,
    verify_against_model,
)
from repro.testing.trace import (
    OP_KINDS,
    TRACE_FORMAT,
    Trace,
    TraceOp,
    generate_trace,
)

__all__ = [
    "BrokenEngine",
    "CrashTraceOutcome",
    "CrashTraceReport",
    "Divergence",
    "FAULT_MODES",
    "FuzzConfig",
    "FuzzReport",
    "OP_KINDS",
    "TRACE_FORMAT",
    "Trace",
    "TraceOp",
    "TraceOracle",
    "check_blsm_invariants",
    "check_partitioned_invariants",
    "check_sharded_invariants",
    "crash_recover_check",
    "default_fuzz_configs",
    "enumerate_trace_crash_points",
    "format_fuzz_report",
    "fuzz",
    "generate_trace",
    "minimize_trace",
    "replay_corpus",
    "replay_corpus_file",
    "run_crash_trace",
    "run_differential",
    "run_model_workload",
    "run_trace",
    "trace_access_count",
    "verify_against_model",
    "write_corpus_file",
]
