"""The differential executor: one trace, every engine, one oracle.

The harness's correctness argument is deliberately boring: a plain
Python ``dict`` is the specification of what a KV store *means*, and
every engine configuration — scheduler, compression, partitioning,
sharding, batching, fault plan — must agree with it op by op.  The
executor replays a :class:`~repro.testing.trace.Trace` through an engine
while stepping the dictionary oracle in lockstep; every read (``get``,
``scan``, ``multi_get``) is compared as it happens, and the final state
is compared by full ordered scan.  Engines differ wildly in *when* work
happens (merges, evictions, shard fan-outs) — the oracle pins down the
one thing that must never differ: the answers.

Batched-vs-sequential parity falls out of the same construction: the
executor applies ``batch`` ops through :meth:`KVEngine.apply_batch` and
``multi_get`` ops through :meth:`KVEngine.multi_get` (``batched=True``),
or decomposes them into the one-op-at-a-time path (``batched=False``) —
both against the same oracle, so an engine whose batching override
disagrees with its own sequential path is caught either way.  Likewise
sharded-vs-single-tree equivalence: the sharded config replays the very
same trace as the single trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.baselines.interface import KVEngine, WriteBatch
from repro.testing.trace import Trace, TraceOp

__all__ = [
    "Divergence",
    "FuzzConfig",
    "TraceOracle",
    "default_fuzz_configs",
    "run_differential",
    "run_trace",
]


class TraceOracle:
    """The dictionary model a trace's answers are checked against.

    Semantics (the shared contract every engine implements):

    * ``put`` inserts or overwrites; ``delete`` removes (idempotent on
      missing keys); ``delta`` byte-appends to a *live* value and is a
      logical no-op on a missing or deleted key (a dangling delta reads
      as "no value" — see docs/correctness.md, bug 4);
    * ``get`` returns the live value or ``None``; ``scan`` returns the
      sorted live items of ``[lo, hi)`` up to ``limit``; ``multi_get``
      returns values aligned with its keys;
    * ``batch`` applies its mutations in order; ``merge_work`` and
      ``crash`` never change logical state.
    """

    def __init__(self) -> None:
        self.state: dict[bytes, bytes] = {}

    def apply_mutation(
        self, op: str, key: bytes, value: bytes | None
    ) -> None:
        """Apply one mutation (``put``/``delete``/``delta``)."""
        if op == "put":
            assert value is not None
            self.state[key] = value
        elif op == "delete":
            self.state.pop(key, None)
        elif op == "delta":
            assert value is not None
            if key in self.state:
                self.state[key] += value
        else:
            raise ValueError(f"unknown mutation {op!r}")

    def expected(self, op: TraceOp) -> Any:
        """Step the oracle over ``op`` and return the expected result."""
        if op.kind in ("put", "delete", "delta"):
            self.apply_mutation(op.kind, op.key, op.value)
            return None
        if op.kind == "batch":
            for mutation, key, value in op.mutations:
                self.apply_mutation(mutation, key, value)
            return None
        if op.kind == "get":
            return self.state.get(op.key)
        if op.kind == "multi_get":
            return [self.state.get(key) for key in op.keys]
        if op.kind == "scan":
            rows = sorted(
                (key, value)
                for key, value in self.state.items()
                if key >= op.key and (op.hi is None or key < op.hi)
            )
            return rows if op.limit is None else rows[: op.limit]
        return None  # merge_work / crash: no logical effect

    def items(self) -> list[tuple[bytes, bytes]]:
        """The full live state, sorted — the final-scan expectation."""
        return sorted(self.state.items())


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between an engine and the oracle."""

    config: str
    op_index: int
    op: str
    expected: Any
    actual: Any
    detail: str = ""

    def describe(self) -> str:
        """One human-readable line for reports and CLI output."""
        line = (
            f"[{self.config}] op {self.op_index} ({self.op}): "
            f"expected {self.expected!r}, got {self.actual!r}"
        )
        return f"{line} — {self.detail}" if self.detail else line


def _drive_merge(engine: KVEngine, budget: int) -> None:
    """Honour a ``merge_work`` marker on whatever machinery exists.

    Single bLSM trees step their merge processes by the byte budget (the
    crash-during-merge surface); engines without an explicit merge-step
    API — including the sharded router, whose fan-out must stay the only
    thing advancing shard clocks — get a ``flush`` instead, which is the
    closest state-neutral "push background work" lever they expose.
    """
    tree = getattr(engine, "tree", None)
    step = None
    if tree is not None:
        step = getattr(tree, "step_m01", None) or getattr(
            tree, "merge_step", None
        )
    if step is not None:
        step(budget)
    else:
        engine.flush()


def _execute(
    engine: KVEngine, op: TraceOp, batched: bool
) -> Any:
    """Run one trace op on an engine; return the observable result."""
    if op.kind == "put":
        engine.put(op.key, op.value)
    elif op.kind == "delete":
        engine.delete(op.key)
    elif op.kind == "delta":
        engine.apply_delta(op.key, op.value)
    elif op.kind == "batch":
        if batched:
            batch = WriteBatch()
            for mutation, key, value in op.mutations:
                if mutation == "put":
                    batch.put(key, value or b"")
                elif mutation == "delete":
                    batch.delete(key)
                else:
                    batch.apply_delta(key, value or b"")
            engine.apply_batch(batch)
        else:
            for mutation, key, value in op.mutations:
                if mutation == "put":
                    engine.put(key, value or b"")
                elif mutation == "delete":
                    engine.delete(key)
                else:
                    engine.apply_delta(key, value or b"")
    elif op.kind == "get":
        return engine.get(op.key)
    elif op.kind == "multi_get":
        if batched:
            return list(engine.multi_get(list(op.keys)))
        return [engine.get(key) for key in op.keys]
    elif op.kind == "scan":
        return list(engine.scan(op.key, op.hi, op.limit))
    elif op.kind == "merge_work":
        _drive_merge(engine, op.budget)
    elif op.kind == "migrate":
        # Only engines with an online-migration surface honour this; on
        # everything else it is a no-op, exactly like the oracle treats
        # it — the op moves data between shards, never changes answers.
        handler = getattr(engine, "handle_migration_op", None)
        if handler is not None:
            handler(op.action, op.key, op.budget)
    # "crash" markers are the fault composer's business; skip here.
    return None


def run_trace(
    engine: KVEngine,
    trace: Trace,
    batched: bool = True,
    config: str = "engine",
    close: bool = True,
) -> Divergence | None:
    """Replay a trace against one engine; return the first divergence.

    Reads are verified op-by-op; after the last op the engine's full
    ordered scan is compared against the oracle (reported as a
    divergence at index ``len(trace)``).  An exception out of the engine
    is reported as a divergence too — the oracle never raises, so any
    engine exception is a conformance failure in its own right.  Returns
    ``None`` on full agreement.
    """
    oracle = TraceOracle()
    divergence: Divergence | None = None
    try:
        for index, op in enumerate(trace):
            expected = oracle.expected(op)
            try:
                actual = _execute(engine, op, batched)
            except Exception as error:  # noqa: BLE001 — any raise diverges
                return Divergence(
                    config, index, str(op), expected, None,
                    detail=f"engine raised {type(error).__name__}: {error}",
                )
            if op.kind in ("get", "multi_get", "scan") and actual != expected:
                return Divergence(config, index, str(op), expected, actual)
        expected_state = oracle.items()
        try:
            actual_state = list(engine.scan(b""))
        except Exception as error:  # noqa: BLE001
            return Divergence(
                config, len(trace), "final-state", expected_state, None,
                detail=f"engine raised {type(error).__name__}: {error}",
            )
        if actual_state != expected_state:
            divergence = Divergence(
                config, len(trace), "final-state",
                expected_state, actual_state,
                detail="full ordered scan disagrees with the oracle",
            )
        return divergence
    finally:
        if close:
            try:
                engine.close()
            except Exception:  # noqa: BLE001 — a close failure after a
                pass  # recorded divergence must not mask the finding


@dataclass(frozen=True)
class FuzzConfig:
    """One engine configuration the differential executor replays.

    ``build`` returns a *fresh* engine (and fresh fault plan — plans are
    stateful) on every call, so one config can be replayed repeatedly
    during minimization.
    """

    label: str
    build: Callable[[], KVEngine]
    batched: bool = True


def default_fuzz_configs(
    engines: Sequence[str] | None = None,
    shards: int = 2,
    include_faulted: bool = True,
) -> list[FuzzConfig]:
    """The standard differential matrix: every registry engine, a
    ``>= 2``-shard sharded config, and (optionally) a fault-plan config
    whose transient and latency faults must be semantically invisible.

    Small C0/cache budgets so a few thousand ops exercise merges and
    evictions on every tree.
    """
    from repro.engines import ENGINE_NAMES, EngineConfig, build_engine

    names = list(engines) if engines else list(ENGINE_NAMES)
    base = EngineConfig(c0_bytes=32 * 1024, cache_pages=16)
    configs: list[FuzzConfig] = []

    def builder(name: str, **overrides: Any) -> Callable[[], KVEngine]:
        return lambda: build_engine(name, base, **overrides)

    for name in names:
        if name == "sharded":
            count = max(2, shards)
            configs.append(
                FuzzConfig(f"sharded-{count}", builder(name, shards=count))
            )
            # Range-partitioned with a live migration controller: the
            # same trace must stay oracle-correct while ``migrate`` ops
            # split and merge shards underneath it.
            boundaries = tuple(
                b"key%06d" % (200 * index // count)
                for index in range(1, count)
            )

            def build_migrating(
                count: int = count, boundaries: tuple[bytes, ...] = boundaries
            ) -> KVEngine:
                from repro.shard.engine import ShardedEngine
                from repro.shard.migration import attach_migration
                from repro.shard.partitioner import RangePartitioner

                from repro.engines import blsm_options

                engine = ShardedEngine(
                    blsm_options(base),
                    shards=count,
                    partitioner=RangePartitioner(list(boundaries)),
                )
                attach_migration(engine, chunk_keys=16)
                return engine

            configs.append(
                FuzzConfig(f"sharded-range-{count}", build_migrating)
            )
        else:
            configs.append(FuzzConfig(name, builder(name)))
    if include_faulted and "blsm" in names:

        def build_faulted() -> KVEngine:
            from repro.faults.plan import FaultPlan, FaultRule

            plan = FaultPlan(seed=1)
            plan.add(FaultRule(kind="transient", probability=0.002))
            plan.add(
                FaultRule(
                    kind="latency", extra_seconds=0.002, probability=0.005
                )
            )
            return build_engine("blsm", base, fault_plan=plan)

        configs.append(FuzzConfig("blsm-faulty", build_faulted))
    if "blsm" in names:
        # GROUP durability: every write commits through the leader-based
        # group-commit queue instead of forcing in log(); the same trace
        # must stay oracle-correct with the new commit path underneath.
        configs.append(
            FuzzConfig("blsm-group", builder("blsm", durability="group"))
        )
        # Memtable ablation backends (repro profile --memtable all): C0
        # on a sorted array and a hash map must answer every trace
        # identically to the paper-faithful skip list.
        from repro.memtable import MEMTABLE_NAMES

        for kind in MEMTABLE_NAMES:
            if kind == "skiplist":
                continue  # the default every other config already runs
            configs.append(
                FuzzConfig(f"blsm-mt-{kind}", builder("blsm", memtable=kind))
            )
    return configs


def run_differential(
    trace: Trace,
    configs: Sequence[FuzzConfig] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[Divergence]:
    """Replay one trace through every config; collect all divergences.

    Each config gets a fresh engine and an independent oracle, so a
    divergence in one engine never contaminates another's verdict.
    """
    found: list[Divergence] = []
    for config in configs if configs is not None else default_fuzz_configs():
        divergence = run_trace(
            config.build(), trace, batched=config.batched, config=config.label
        )
        if divergence is not None:
            found.append(divergence)
            if progress is not None:
                progress(f"DIVERGENCE {divergence.describe()}")
        elif progress is not None:
            progress(f"  {config.label}: {len(trace)} ops, no divergence")
    return found
