"""Greedy trace minimization: shrink a failing trace to a small repro.

A fuzzer finding is only useful once a human can read it; a 2000-op
trace with one dropped tombstone is not readable.  The minimizer runs
greedy delta debugging (Zeller's ddmin, simplified): repeatedly try
removing chunks of halving sizes, keeping any removal after which the
caller's ``still_failing`` predicate holds, then simplify surviving
``batch`` ops mutation-by-mutation.  The predicate must build a *fresh*
engine per attempt (see :class:`~repro.testing.differential.FuzzConfig`);
determinism of the whole stack — seeded traces, virtual clocks, seeded
fault plans — is what makes every probe meaningful.

The end product is a corpus file under ``tests/corpus/`` via
:func:`write_corpus_file`: a plain JSON trace with replay hints in its
``meta``, replayed forever after by ``tests/test_corpus.py`` and
``repro fuzz --corpus``.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.testing.trace import Trace, TraceOp

__all__ = ["minimize_trace", "write_corpus_file"]


def _simplify_batches(
    trace: Trace, still_failing: Callable[[Trace], bool]
) -> Trace:
    """Strip individual mutations out of surviving batch ops."""
    ops = list(trace.ops)
    for index, op in enumerate(ops):
        if op.kind != "batch":
            continue
        mutations = list(op.mutations)
        cursor = 0
        while cursor < len(mutations) and len(mutations) > 1:
            candidate = mutations[:cursor] + mutations[cursor + 1:]
            attempt = ops[:index] + [TraceOp.batch(candidate)] + ops[index + 1:]
            if still_failing(trace.replace_ops(attempt)):
                mutations = candidate
            else:
                cursor += 1
        if len(mutations) != len(op.mutations):
            ops[index] = TraceOp.batch(mutations)
    return trace.replace_ops(ops)


def minimize_trace(
    trace: Trace,
    still_failing: Callable[[Trace], bool],
    max_probes: int = 2000,
) -> Trace:
    """Shrink a failing trace while ``still_failing`` keeps holding.

    Greedy and deterministic: chunk removal at halving granularity until
    a fixed point, then per-mutation batch simplification.  The input
    trace is assumed failing (the caller just observed the failure);
    the result is guaranteed failing — every kept reduction was
    re-validated through the predicate.  ``max_probes`` bounds total
    predicate invocations so pathological predicates cannot spin
    forever.
    """
    ops = list(trace.ops)
    probes = 0

    def probe(candidate: list[TraceOp]) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        return still_failing(trace.replace_ops(candidate))

    changed = True
    while changed and probes < max_probes:
        changed = False
        chunk = max(1, len(ops) // 2)
        while chunk >= 1:
            index = 0
            while index < len(ops):
                candidate = ops[:index] + ops[index + chunk:]
                if candidate and probe(candidate):
                    ops = candidate
                    changed = True
                else:
                    index += chunk
            chunk //= 2
    minimized = _simplify_batches(
        trace.replace_ops(ops),
        lambda t: probes < max_probes and still_failing(t),
    )
    return minimized


def write_corpus_file(
    trace: Trace,
    directory: str,
    name: str,
    note: str | None = None,
) -> str:
    """Write a trace into a corpus directory; return the file path.

    ``name`` becomes ``<directory>/<name>.json``; an existing file of
    that name is overwritten (re-running a fuzz seed regenerates the
    same repro).  ``note`` lands in the trace ``meta`` so the corpus
    file explains itself.
    """
    os.makedirs(directory, exist_ok=True)
    if note is not None:
        trace = trace.replace_ops(trace.ops)
        trace.meta["note"] = note
    path = os.path.join(directory, f"{name}.json")
    trace.save(path)
    return path
