"""Deliberately buggy engine wrappers that validate the harness itself.

A conformance harness that has never caught a bug proves nothing; these
wrappers inject the classic LSM semantic bugs *by construction* so tests
(and sceptical humans) can watch the differential executor catch them
and the minimizer shrink them.  They are also the honesty check the
acceptance bar demands: ``repro fuzz`` against a ``BrokenEngine`` must
flag a divergence and produce a tiny corpus repro, every time.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.baselines.interface import KVEngine
from repro.shard.partitioner import fnv1a_bytes
from repro.sim.clock import VirtualClock

__all__ = ["BrokenEngine"]


class BrokenEngine(KVEngine):
    """A delegating wrapper with one seeded-in semantic bug.

    Bugs (deterministic, so minimized repros replay):

    * ``drop-tombstone`` — silently ignores deletes of keys whose FNV-1a
      hash is ``0 (mod 4)``: deleted keys resurrect (the classic
      compaction-filter bug class from the Sarkar et al. design-space
      study);
    * ``lost-delta`` — drops every second ``apply_delta``: partial
      updates intermittently vanish (a batching/routing bug shape);
    * ``stale-scan`` — range scans drop their first row, while point
      reads stay correct (an iterator off-by-one only scan verification
      catches).
    """

    BUGS = ("drop-tombstone", "lost-delta", "stale-scan")

    def __init__(self, inner: KVEngine, bug: str = "drop-tombstone") -> None:
        if bug not in self.BUGS:
            raise ValueError(f"unknown bug {bug!r}; expected one of {self.BUGS}")
        self._inner = inner
        self._bug = bug
        self._delta_calls = 0
        self.name = f"broken[{bug}]-{inner.name}"

    @property
    def clock(self) -> VirtualClock:
        """The wrapped engine's clock."""
        return self._inner.clock

    @property
    def runtime(self):
        """The wrapped engine's observability runtime."""
        return self._inner.runtime

    def get(self, key: bytes) -> bytes | None:
        """Point lookup (delegated faithfully)."""
        return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        """Blind write (delegated faithfully)."""
        self._inner.put(key, value)

    def delete(self, key: bytes) -> None:
        """Remove a key — except the ``drop-tombstone`` bug's victims."""
        if self._bug == "drop-tombstone" and fnv1a_bytes(key) % 4 == 0:
            return
        self._inner.delete(key)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Partial update — every second one vanishes under ``lost-delta``."""
        self._delta_calls += 1
        if self._bug == "lost-delta" and self._delta_calls % 2 == 0:
            return
        self._inner.apply_delta(key, delta)

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan — ``stale-scan`` silently drops the first row."""
        rows = self._inner.scan(lo, hi, limit)
        if self._bug == "stale-scan":
            next(rows, None)
        return rows

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Conditional insert (delegated faithfully)."""
        return self._inner.insert_if_not_exists(key, value)

    def flush(self) -> None:
        """Force logs (delegated faithfully)."""
        self._inner.flush()

    def close(self) -> None:
        """Shut down the wrapped engine."""
        self._inner.close()

    def io_summary(self) -> dict[str, Any]:
        """The wrapped engine's device counters."""
        return self._inner.io_summary()
