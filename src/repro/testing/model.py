"""Model-based testing utilities for storage engines.

The invariants and model-checking drivers the internal test suite uses,
exported for downstream users who build on the engines (or implement
their own against :class:`repro.baselines.KVEngine`):

* :func:`run_model_workload` — drive any engine and a dictionary model
  with the same random operation stream, verifying reads as it goes;
* :func:`check_blsm_invariants` / :func:`check_partitioned_invariants` /
  :func:`check_sharded_invariants` — structural deep checks (sortedness,
  version ordering, space accounting, partition tiling, router/placement
  agreement);
* :func:`crash_recover_check` — crash an engine mid-flight and verify
  recovery against the model.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.baselines.interface import KVEngine
from repro.core.partitioned import PartitionedBLSM
from repro.core.tree import BLSM
from repro.records import RecordKind


def run_model_workload(
    engine: KVEngine,
    operations: int,
    keyspace: int = 1000,
    seed: int = 0,
    key_format: bytes = b"key%06d",
    value_bytes: int = 64,
    delta_fraction: float = 0.1,
    delete_fraction: float = 0.1,
    read_fraction: float = 0.1,
    checkpoint_every: int | None = None,
    on_checkpoint: Callable[[KVEngine, dict], None] | None = None,
) -> dict[bytes, bytes]:
    """Drive an engine and a dict model in lockstep; return the model.

    Reads are verified inline; the caller can add periodic deep checks
    via ``on_checkpoint``.  Raises ``AssertionError`` on any divergence.
    """
    rng = random.Random(seed)
    model: dict[bytes, bytes] = {}
    write_fraction = 1.0 - delta_fraction - delete_fraction - read_fraction
    if write_fraction <= 0:
        raise ValueError("fractions must leave room for writes")
    for i in range(operations):
        key = key_format % rng.randrange(keyspace)
        roll = rng.random()
        if roll < write_fraction:
            value = b"v%08d" % i + bytes(max(0, value_bytes - 9))
            engine.put(key, value)
            model[key] = value
        elif roll < write_fraction + delete_fraction:
            engine.delete(key)
            model.pop(key, None)
        elif roll < write_fraction + delete_fraction + delta_fraction:
            if key in model:
                engine.apply_delta(key, b"+D")
                model[key] += b"+D"
        else:
            got = engine.get(key)
            expected = model.get(key)
            assert got == expected, (
                f"read divergence at op {i}: {key!r} -> {got!r}, "
                f"expected {expected!r}"
            )
        if (
            checkpoint_every
            and on_checkpoint is not None
            and i % checkpoint_every == checkpoint_every - 1
        ):
            on_checkpoint(engine, model)
    return model


def verify_against_model(engine: KVEngine, model: dict[bytes, bytes]) -> None:
    """Every model entry reads back; a full scan matches exactly."""
    for key, value in model.items():
        got = engine.get(key)
        assert got == value, f"{key!r} -> {got!r}, expected {value!r}"
    assert list(engine.scan(b"")) == sorted(model.items())


def check_blsm_invariants(tree: BLSM) -> None:
    """Structural deep check of an unpartitioned tree.

    Verifies per-component sortedness/uniqueness/byte accounting,
    cross-level version ordering (seqnos strictly decrease walking
    down), space accounting (no orphan extents outside active merges),
    and tombstone GC at the bottom level.
    """
    components = [tree._c1, tree._c1_prime, tree._c2]
    ratio = tree.options.compression_ratio
    for component in components:
        if component is None:
            continue
        records = list(component.iter_records())
        keys = [record.key for record in records]
        assert keys == sorted(keys), "component out of order"
        assert len(keys) == len(set(keys)), "duplicate keys in component"
        assert len(keys) == component.key_count
        expected_bytes = sum(
            max(8, int(r.nbytes * ratio)) for r in records
        )
        assert expected_bytes == component.nbytes, "byte accounting drift"
    levels = [{r.key: r.seqno for r in tree._memtable}]
    if tree._m01 is not None:
        levels.append({k: r.seqno for k, r in tree._m01.overlay.items()})
    for extra in tree._extras:
        levels.append({r.key: r.seqno for r in extra.iter_records()})
    for component in components:
        if component is not None:
            levels.append({r.key: r.seqno for r in component.iter_records()})
    for newer, older in zip(levels, levels[1:]):
        for key, seqno in newer.items():
            if key in older:
                assert seqno > older[key], f"version inversion for {key!r}"
    if tree._m01 is None and tree._m12 is None:
        live = set()
        for component in components + tree._extras:
            if component is not None:
                live.update(component.extents)
                if component.bloom_extent is not None:
                    live.add(component.bloom_extent)
        orphans = set(tree.stasis.regions.allocated_extents) - live
        assert not orphans, f"leaked extents: {orphans}"
    if tree._c2 is not None:
        assert all(
            record.kind is not RecordKind.TOMBSTONE
            for record in tree._c2.iter_records()
        ), "tombstone survived to the bottom level"


def check_partitioned_invariants(tree: PartitionedBLSM) -> None:
    """Structural deep check of a partitioned tree."""
    ranges = tree.partition_ranges()
    assert ranges[0][0] == b""
    assert ranges[-1][1] is None
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo, "partitions do not tile the keyspace"
    for partition in tree._partitions:
        for component in (partition.c1, partition.c2):
            if component is None:
                continue
            records = list(component.iter_records())
            keys = [record.key for record in records]
            assert keys == sorted(keys)
            assert all(key >= partition.lo for key in keys)
            if partition.hi is not None:
                assert all(key < partition.hi for key in keys)
        if partition.c1 is not None and partition.c2 is not None:
            older = {r.key: r.seqno for r in partition.c2.iter_records()}
            for record in partition.c1.iter_records():
                if record.key in older:
                    assert record.seqno > older[record.key]


def check_sharded_invariants(engine) -> None:
    """Structural deep check of a :class:`~repro.shard.ShardedEngine`.

    Verifies the fleet-level invariants on top of the per-tree ones:

    * the partitioner routes across exactly the engine's shard count;
    * no shard's clock is ahead of the router's (a shard working in the
      future would let fan-outs smuggle device time into the past);
    * every bLSM shard passes :func:`check_blsm_invariants`;
    * router/placement agreement: every key physically live on a shard
      names that shard in the partitioner's placement history
      (``owners``) — a key outside its owner set is unreachable to
      reads and proof of a routing bug;
    * mid-migration coherence: an in-flight migration's plan names
      adjacent, distinct shards and a non-empty donated range, its
      dirty set stays inside that range, a switched-but-unretired
      source is epoch-fenced, and staged rows on the migration target
      are confined to the donated range (they are exempt from the
      owner-set rule — the scan mask hides them from readers).

    The per-shard scans the check performs advance shard clocks; the
    router clock is re-synchronized afterwards so the engine remains
    usable (and the clock invariant re-established) after a check.
    """
    partitioner = engine.partitioner
    assert partitioner.nshards == len(engine.shards), (
        f"partitioner routes {partitioner.nshards} shards, engine has "
        f"{len(engine.shards)}"
    )
    for index, shard in enumerate(engine.shards):
        assert shard.clock.now <= engine.clock.now + 1e-9, (
            f"shard {index} clock ({shard.clock.now}) is ahead of the "
            f"router ({engine.clock.now})"
        )
    controller = getattr(engine, "migration", None)
    mask = controller.mask_range() if controller is not None else None
    if controller is not None and controller.active:
        plan = controller.plan
        assert plan is not None, "active migration without a plan"
        nshards = len(engine.shards)
        assert 0 <= plan.source < nshards and 0 <= plan.target < nshards
        assert abs(plan.source - plan.target) == 1, (
            f"migration {plan.source}->{plan.target} is not between "
            "neighbours"
        )
        assert plan.lo < plan.hi, "empty donated range"
        for key in controller.dirty_keys():
            assert plan.lo <= key < plan.hi, (
                f"dirty key {key!r} outside the donated range "
                f"[{plan.lo!r}, {plan.hi!r})"
            )
        if controller.state == "retire":
            assert engine._fence_epochs[plan.source] == engine.epoch, (
                f"switched source {plan.source} is not fenced at the "
                f"current epoch {engine.epoch}"
            )
    for index, shard in enumerate(engine.shards):
        tree = getattr(shard, "tree", None)
        if isinstance(tree, BLSM):
            check_blsm_invariants(tree)
        for key, _ in shard.scan(b""):
            if (
                mask is not None
                and index == mask[0]
                and mask[1] <= key < mask[2]
            ):
                continue  # staged migration rows, hidden by the scan mask
            owners = partitioner.owners(key)
            assert index in owners, (
                f"shard {index} holds {key!r} but the placement history "
                f"names only shards {owners}"
            )
    engine.clock.advance_to(
        max(shard.clock.now for shard in engine.shards)
    )


def crash_recover_check(
    tree: BLSM, model: dict[bytes, bytes]
) -> BLSM:
    """Crash the tree's storage, recover, verify, return the new tree.

    Requires ``DurabilityMode.SYNC`` (otherwise recent writes are
    legitimately lost and the model comparison would be wrong).
    """
    stasis = tree.stasis
    options = tree.options
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    verify_against_model(_as_engine(recovered), model)
    return recovered


class _as_engine:
    """Duck-type a bare tree as the tiny engine surface we verify."""

    def __init__(self, tree: BLSM) -> None:
        self._tree = tree

    def get(self, key: bytes):
        return self._tree.get(key)

    def scan(self, lo: bytes):
        return self._tree.scan(lo)
