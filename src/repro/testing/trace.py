"""The serializable operation-trace format the conformance harness runs.

A :class:`Trace` is a self-contained list of operations — every key and
value is stored inline, so a trace replays identically with no generator
or seed in the loop.  That is what makes it the harness's common
currency: the differential executor replays one trace through every
engine, the fault composer overlays crash schedules onto it, the
minimizer shrinks it, and a shrunk failure lands in ``tests/corpus/`` as
a plain JSON file a human can read and edit.

Operation kinds (:data:`OP_KINDS`):

``put`` / ``delete`` / ``delta``
    Single mutations, applied through the engine's point API.
``get`` / ``scan`` / ``multi_get``
    Reads, verified op-by-op against the dictionary oracle.
``batch``
    An ordered group of mutations applied through
    :meth:`~repro.baselines.interface.KVEngine.apply_batch` — the
    batched-vs-sequential parity surface.
``merge_work``
    A scheduling marker: push the engine's merge machinery forward by a
    byte budget.  No logical state changes, but it moves merge
    freeze-points around — the crash-during-merge surface.
``crash``
    A crash marker, honoured only by the fault composer (crash the
    substrate here, recover, verify, continue); other executors skip it.
``migrate``
    An online-migration driver op, honoured only by engines exposing
    ``handle_migration_op`` (the sharded engine with an attached
    controller): ``split``/``merge`` plan a live boundary move of the
    shard owning ``key``, ``step`` just advances an in-flight migration
    by ``budget`` bounded steps.  Logically a no-op — the oracle is
    untouched — which is the point: every read after it must still
    agree with the oracle mid-migration.

Serialization is a single JSON document.  Keys and values are bytes;
they are stored as Latin-1 strings (a bijection between byte values
0–255 and code points 0–255), so arbitrary binary keys round-trip while
the common ASCII case stays human-readable in corpus files.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

#: Every operation kind a trace may contain, in documentation order.
OP_KINDS = (
    "put",
    "delete",
    "delta",
    "get",
    "scan",
    "multi_get",
    "batch",
    "merge_work",
    "crash",
    "migrate",
)

#: The trace file format tag; bump on incompatible changes.
TRACE_FORMAT = "repro-trace-v1"


def _encode(data: bytes) -> str:
    return data.decode("latin-1")


def _decode(text: str) -> bytes:
    return text.encode("latin-1")


@dataclass(frozen=True)
class TraceOp:
    """One operation of a trace.

    Construct through the classmethod constructors (``TraceOp.put(...)``,
    ``TraceOp.scan(...)``, ...) rather than positionally; only the fields
    relevant to ``kind`` are meaningful.
    """

    kind: str
    key: bytes = b""
    value: bytes = b""
    hi: bytes | None = None
    limit: int | None = None
    keys: tuple[bytes, ...] = ()
    mutations: tuple[tuple[str, bytes, bytes | None], ...] = ()
    budget: int = 0
    action: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown trace op {self.kind!r}; expected one of {OP_KINDS}"
            )

    # -- constructors --------------------------------------------------

    @classmethod
    def put(cls, key: bytes, value: bytes) -> "TraceOp":
        """A blind write."""
        return cls("put", key=key, value=value)

    @classmethod
    def delete(cls, key: bytes) -> "TraceOp":
        """A tombstone write."""
        return cls("delete", key=key)

    @classmethod
    def delta(cls, key: bytes, delta: bytes) -> "TraceOp":
        """A partial update (byte-append semantics)."""
        return cls("delta", key=key, value=delta)

    @classmethod
    def get(cls, key: bytes) -> "TraceOp":
        """A verified point lookup."""
        return cls("get", key=key)

    @classmethod
    def scan(
        cls, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> "TraceOp":
        """A verified ordered range scan."""
        return cls("scan", key=lo, hi=hi, limit=limit)

    @classmethod
    def multi_get(cls, keys: Sequence[bytes]) -> "TraceOp":
        """A verified batched lookup."""
        return cls("multi_get", keys=tuple(keys))

    @classmethod
    def batch(
        cls, mutations: Sequence[tuple[str, bytes, bytes | None]]
    ) -> "TraceOp":
        """An ordered mutation group applied through ``apply_batch``."""
        for op, _, _ in mutations:
            if op not in ("put", "delete", "delta"):
                raise ValueError(f"unknown batch mutation {op!r}")
        return cls("batch", mutations=tuple(mutations))

    @classmethod
    def merge_work(cls, budget: int = 16 * 1024) -> "TraceOp":
        """A merge-scheduling marker worth ``budget`` merge bytes."""
        return cls("merge_work", budget=budget)

    @classmethod
    def crash(cls) -> "TraceOp":
        """A crash marker (crash, recover, verify, continue)."""
        return cls("crash")

    @classmethod
    def migrate(cls, action: str, key: bytes = b"", budget: int = 1) -> "TraceOp":
        """An online-migration driver op (sharded engines only)."""
        if action not in ("split", "merge", "step"):
            raise ValueError(
                f"unknown migrate action {action!r}; "
                "expected split, merge or step"
            )
        return cls("migrate", key=key, budget=budget, action=action)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The op as a plain JSON-serializable dict."""
        if self.kind in ("put", "delta"):
            return {
                "op": self.kind,
                "key": _encode(self.key),
                "value": _encode(self.value),
            }
        if self.kind in ("get", "delete"):
            return {"op": self.kind, "key": _encode(self.key)}
        if self.kind == "scan":
            return {
                "op": "scan",
                "lo": _encode(self.key),
                "hi": None if self.hi is None else _encode(self.hi),
                "limit": self.limit,
            }
        if self.kind == "multi_get":
            return {"op": "multi_get", "keys": [_encode(k) for k in self.keys]}
        if self.kind == "batch":
            return {
                "op": "batch",
                "mutations": [
                    [op, _encode(key), None if value is None else _encode(value)]
                    for op, key, value in self.mutations
                ],
            }
        if self.kind == "merge_work":
            return {"op": "merge_work", "budget": self.budget}
        if self.kind == "migrate":
            return {
                "op": "migrate",
                "action": self.action,
                "key": _encode(self.key),
                "budget": self.budget,
            }
        return {"op": "crash"}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceOp":
        """Parse one op dict (inverse of :meth:`to_dict`)."""
        kind = data["op"]
        if kind in ("put", "delta"):
            return cls(kind, key=_decode(data["key"]), value=_decode(data["value"]))
        if kind in ("get", "delete"):
            return cls(kind, key=_decode(data["key"]))
        if kind == "scan":
            hi = data.get("hi")
            return cls.scan(
                _decode(data["lo"]),
                None if hi is None else _decode(hi),
                data.get("limit"),
            )
        if kind == "multi_get":
            return cls.multi_get([_decode(k) for k in data["keys"]])
        if kind == "batch":
            return cls.batch(
                [
                    (op, _decode(key), None if value is None else _decode(value))
                    for op, key, value in data["mutations"]
                ]
            )
        if kind == "merge_work":
            return cls.merge_work(int(data.get("budget", 16 * 1024)))
        if kind == "migrate":
            return cls.migrate(
                data["action"],
                _decode(data.get("key", "")),
                int(data.get("budget", 1)),
            )
        if kind == "crash":
            return cls.crash()
        raise ValueError(f"unknown trace op {kind!r}")

    def __str__(self) -> str:
        body = {k: v for k, v in self.to_dict().items() if k != "op"}
        return f"{self.kind}({body})" if body else self.kind


@dataclass
class Trace:
    """A self-contained, serializable operation trace.

    ``meta`` carries provenance (generator seed, a human note) and the
    replay hints the corpus runner dispatches on: ``mode``
    (``"differential"`` or ``"crash"``), ``engines`` (registry names to
    replay against; empty means every engine), ``shards`` (shard count
    for the sharded config), ``crash_every`` (crash-boundary stride for
    crash-mode replays).
    """

    ops: list[TraceOp] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def replace_ops(self, ops: Sequence[TraceOp]) -> "Trace":
        """A new trace with the same meta and different ops."""
        return Trace(ops=list(ops), meta=dict(self.meta))

    def to_json(self) -> str:
        """Serialize to the ``repro-trace-v1`` JSON document."""
        document = {
            "format": TRACE_FORMAT,
            "meta": self.meta,
            "ops": [op.to_dict() for op in self.ops],
        }
        return json.dumps(document, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Parse a trace document (inverse of :meth:`to_json`)."""
        document = json.loads(text)
        if document.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} document: format="
                f"{document.get('format')!r}"
            )
        return cls(
            ops=[TraceOp.from_dict(op) for op in document.get("ops", [])],
            meta=dict(document.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the trace to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())


def generate_trace(
    ops: int,
    seed: int = 0,
    keyspace: int = 200,
    value_bytes: int = 24,
    key_format: bytes = b"key%06d",
    scan_fraction: float = 0.05,
    batch_fraction: float = 0.08,
    multi_get_fraction: float = 0.05,
    merge_work_fraction: float = 0.03,
    crash_fraction: float = 0.0,
    migrate_fraction: float = 0.0,
    max_batch_ops: int = 8,
) -> Trace:
    """Generate a seeded random trace; same arguments, same trace.

    The op mix leans on writes (the merge machinery needs fuel) with
    enough reads, scans and batches to exercise every engine surface.
    Deltas are only emitted for keys currently live in the generator's
    own shadow model, because delta-on-missing-key semantics are a
    bLSM-family extension the simpler baselines do not define; a corpus
    trace that wants that corner writes it by hand and restricts its
    ``engines`` hint (see ``tests/corpus/delta-on-deleted-key.json``).
    """
    rng = random.Random(seed)
    shadow: dict[bytes, bytes] = {}
    out: list[TraceOp] = []

    def random_key() -> bytes:
        return key_format % rng.randrange(keyspace)

    def random_value(tag: int) -> bytes:
        body = b"v%08d" % tag
        return body + bytes(max(0, value_bytes - len(body)))

    def mutation(tag: int) -> tuple[str, bytes, bytes | None]:
        key = random_key()
        roll = rng.random()
        if roll < 0.70:
            value = random_value(tag)
            shadow[key] = value
            return ("put", key, value)
        if roll < 0.85 or key not in shadow:
            shadow.pop(key, None)
            return ("delete", key, None)
        shadow[key] += b"+D"
        return ("delta", key, b"+D")

    special = (
        scan_fraction
        + batch_fraction
        + multi_get_fraction
        + merge_work_fraction
        + crash_fraction
        + migrate_fraction
    )
    if special >= 0.5:
        raise ValueError("special-op fractions must leave room for point ops")
    for index in range(ops):
        roll = rng.random()
        if roll < scan_fraction:
            lo = random_key()
            hi = random_key() if rng.random() < 0.5 else None
            if hi is not None and hi < lo:
                lo, hi = hi, lo
            limit = rng.randrange(1, 20) if rng.random() < 0.5 else None
            out.append(TraceOp.scan(lo, hi, limit))
            continue
        roll -= scan_fraction
        if roll < batch_fraction:
            count = rng.randrange(2, max_batch_ops + 1)
            out.append(
                TraceOp.batch(
                    [mutation(index * 100 + j) for j in range(count)]
                )
            )
            continue
        roll -= batch_fraction
        if roll < multi_get_fraction:
            count = rng.randrange(2, 12)
            out.append(TraceOp.multi_get([random_key() for _ in range(count)]))
            continue
        roll -= multi_get_fraction
        if roll < merge_work_fraction:
            out.append(TraceOp.merge_work(rng.randrange(4, 64) * 1024))
            continue
        roll -= merge_work_fraction
        if roll < crash_fraction:
            out.append(TraceOp.crash())
            continue
        roll -= crash_fraction
        if roll < migrate_fraction:
            # Mostly steps (advance whatever is in flight), with enough
            # split/merge plans to start migrations at varied points.
            action_roll = rng.random()
            if action_roll < 0.3:
                action = "split"
            elif action_roll < 0.5:
                action = "merge"
            else:
                action = "step"
            out.append(
                TraceOp.migrate(
                    action, random_key(), budget=rng.randrange(1, 6)
                )
            )
            continue
        # Point operations fill the remaining probability mass.
        point = rng.random()
        key = random_key()
        if point < 0.55:
            value = random_value(index)
            shadow[key] = value
            out.append(TraceOp.put(key, value))
        elif point < 0.67:
            shadow.pop(key, None)
            out.append(TraceOp.delete(key))
        elif point < 0.75 and key in shadow:
            shadow[key] += b"+D"
            out.append(TraceOp.delta(key, b"+D"))
        else:
            out.append(TraceOp.get(key))
    return Trace(
        ops=out,
        meta={
            "mode": "differential",
            "seed": seed,
            "keyspace": keyspace,
            "value_bytes": value_bytes,
        },
    )
