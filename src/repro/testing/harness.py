"""Fuzz orchestration: generate, replay everywhere, shrink, file.

This is the loop behind ``repro fuzz`` and the CI smoke job:

1. generate a seeded trace (:func:`~repro.testing.trace.generate_trace`);
2. replay it through the whole differential matrix
   (:func:`~repro.testing.differential.run_differential`) — every
   registry engine, a ``>= 2``-shard sharded config, a fault-plan
   config;
3. optionally compose crash schedules over a companion trace
   (:func:`~repro.testing.composer.run_crash_trace` /
   :func:`~repro.testing.composer.enumerate_trace_crash_points`);
4. on any divergence, shrink the trace with
   :func:`~repro.testing.minimize.minimize_trace` and file the repro
   into the corpus directory, where ``tests/test_corpus.py`` replays it
   forever.

Everything is seeded and virtual-clocked, so a report reproduces from
its seed alone; the corpus files exist for the cases a seed no longer
reaches once the bug is fixed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.testing.composer import (
    CrashTraceReport,
    enumerate_trace_crash_points,
    run_crash_trace,
)
from repro.testing.differential import (
    Divergence,
    FuzzConfig,
    default_fuzz_configs,
    run_differential,
    run_trace,
)
from repro.testing.minimize import minimize_trace, write_corpus_file
from repro.testing.trace import Trace, generate_trace

__all__ = [
    "FuzzReport",
    "format_fuzz_report",
    "fuzz",
    "replay_corpus",
    "replay_corpus_file",
]

#: What the ``faults`` knob of :func:`fuzz` accepts.
FAULT_MODES = ("none", "plans", "crash", "all")


@dataclass
class FuzzReport:
    """Everything one :func:`fuzz` invocation observed."""

    seed: int
    configs: list[str] = field(default_factory=list)
    rounds_run: int = 0
    ops_replayed: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    crash_failures: list[str] = field(default_factory=list)
    crash_boundaries: int = 0
    crashes_triggered: int = 0
    corpus_files: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every replay agreed and every recovery verified."""
        return not self.divergences and not self.crash_failures


def _config_hints(label: str, shards: int) -> dict[str, object]:
    """Replay hints for a corpus file naming one matrix config.

    Maps a :func:`default_fuzz_configs` label back to registry terms so
    :func:`replay_corpus_file` can rebuild the failing config without
    the fuzz loop around it.
    """
    if label.startswith("sharded-"):
        # Labels are "sharded-<count>" or "sharded-range-<count>"; the
        # count is always the last dash segment.  Replay rebuilds both
        # sharded configs (hash and migrating range), which covers the
        # failing one either way.
        return {"engines": ["sharded"], "shards": int(label.rsplit("-", 1)[1])}
    if label.startswith("blsm-"):
        # Derived blsm configs (blsm-faulty, blsm-group, blsm-mt-*):
        # replay rebuilds the whole blsm config family, which covers
        # the failing one.
        return {"engines": ["blsm"]}
    return {"engines": [label], "shards": shards}


def _shrink_and_file(
    trace: Trace,
    divergence: Divergence,
    configs: Sequence[FuzzConfig],
    corpus_dir: str | None,
    name: str,
    progress: Callable[[str], None] | None,
    shards: int,
) -> tuple[Trace, str | None]:
    """Minimize a failing trace against its config; optionally file it."""
    config = next(c for c in configs if c.label == divergence.config)

    def still_failing(candidate: Trace) -> bool:
        return (
            run_trace(
                config.build(), candidate,
                batched=config.batched, config=config.label,
            )
            is not None
        )

    small = minimize_trace(trace, still_failing)
    if progress is not None:
        progress(
            f"  minimized {len(trace)} -> {len(small)} ops for "
            f"[{divergence.config}]"
        )
    path = None
    if corpus_dir is not None:
        small.meta.update(_config_hints(divergence.config, shards))
        small.meta["mode"] = "differential"
        path = write_corpus_file(
            small, corpus_dir, name, note=divergence.describe()
        )
        if progress is not None:
            progress(f"  filed repro: {path}")
    return small, path


def fuzz(
    rounds: int = 1,
    ops: int = 2000,
    seed: int = 0,
    engines: Sequence[str] | None = None,
    shards: int = 2,
    faults: str = "plans",
    crash_every: int = 40,
    crash_ops: int = 120,
    budget_seconds: float | None = None,
    corpus_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the differential (and optionally crash) fuzz loop.

    ``faults`` selects the schedule: ``"none"`` drops the fault-plan
    config from the matrix, ``"plans"`` (default) keeps it, ``"crash"``
    adds the crash-composition sweep over a companion ``crash_ops``-op
    trace (crash markers plus a boundary enumeration at stride
    ``crash_every``), ``"all"`` does both.  ``budget_seconds`` stops
    starting new rounds once exceeded — a wall-clock lid for CI, not a
    determinism knob (completed rounds are identical regardless).

    Every divergence is minimized; with ``corpus_dir`` set, the shrunken
    repro is written there as ``fuzz-s<seed>-r<round>-<config>.json``.
    """
    if faults not in FAULT_MODES:
        raise ValueError(
            f"unknown faults mode {faults!r}; expected one of {FAULT_MODES}"
        )
    started = time.monotonic()
    configs = default_fuzz_configs(
        engines=engines,
        shards=shards,
        include_faulted=faults in ("plans", "all"),
    )
    report = FuzzReport(seed=seed, configs=[c.label for c in configs])
    for round_index in range(rounds):
        if (
            budget_seconds is not None
            and time.monotonic() - started > budget_seconds
            and round_index > 0
        ):
            if progress is not None:
                progress(
                    f"time budget exhausted after {round_index} rounds"
                )
            break
        round_seed = seed + round_index
        # Under the full fault schedule the trace also drives online
        # migrations (split/merge/step ops) — honoured by the migrating
        # sharded config, no-ops everywhere else, so one trace still
        # replays across the whole matrix.
        trace = generate_trace(
            ops,
            seed=round_seed,
            migrate_fraction=0.015 if faults == "all" else 0.0,
        )
        if progress is not None:
            progress(
                f"round {round_index}: {len(trace)} ops (seed {round_seed}) "
                f"across {len(configs)} configs"
            )
        divergences = run_differential(trace, configs, progress=progress)
        report.divergences.extend(divergences)
        report.ops_replayed += len(trace) * len(configs)
        for divergence in divergences:
            _, path = _shrink_and_file(
                trace, divergence, configs, corpus_dir,
                f"fuzz-s{seed}-r{round_index}-{divergence.config}",
                progress, shards,
            )
            if path is not None:
                report.corpus_files.append(path)
        if faults in ("crash", "all"):
            crash_trace = generate_trace(
                crash_ops,
                seed=round_seed,
                keyspace=40,
                scan_fraction=0.0,
                multi_get_fraction=0.03,
                merge_work_fraction=0.08,
                crash_fraction=0.03,
            )
            # Every crash-capable tree gets a schedule: the bLSM tree,
            # its partitioned variant, and one config per compaction
            # policy — so a recovery bug in any layout fails the fuzz
            # run, not just bugs in the paper's own tree.
            from repro.engines import CRASH_ENGINE_NAMES

            for crash_engine in CRASH_ENGINE_NAMES:
                marker_failures = run_crash_trace(
                    crash_trace, engine=crash_engine, seed=round_seed
                )
                sweep = enumerate_trace_crash_points(
                    crash_trace,
                    engine=crash_engine,
                    every=crash_every,
                    seed=round_seed,
                    progress=progress,
                )
                report.crash_boundaries += sweep.boundaries_tested
                report.crashes_triggered += sweep.crashes_triggered
                report.crash_failures.extend(
                    f"[{crash_engine}] {failure}"
                    for failure in marker_failures
                )
                report.crash_failures.extend(
                    f"[{crash_engine}] {failure}"
                    for outcome in sweep.failures
                    for failure in outcome.failures
                )
                if progress is not None:
                    progress(
                        f"  crash compose [{crash_engine}]: "
                        f"{sweep.boundaries_tested} boundaries, "
                        f"{sweep.crashes_triggered} crashes, "
                        f"{len(sweep.failures)} failures"
                    )
        report.rounds_run += 1
    report.elapsed_seconds = time.monotonic() - started
    return report


def replay_corpus_file(
    path: str, progress: Callable[[str], None] | None = None
) -> list[str]:
    """Replay one corpus trace; return human-readable failures.

    Dispatches on the trace's ``meta["mode"]``: ``"differential"``
    (default) rebuilds the matrix the file's ``engines``/``shards``
    hints name and demands zero divergences; ``"crash"`` drives the
    crash composer — ``crash`` markers always, plus a full boundary
    enumeration when ``meta["crash_every"]`` is set.
    """
    trace = Trace.load(path)
    mode = trace.meta.get("mode", "differential")
    if mode == "crash":
        engine = trace.meta.get("engine", "blsm")
        seed = int(trace.meta.get("seed", 0))
        failures = list(run_crash_trace(trace, engine=engine, seed=seed))
        every = trace.meta.get("crash_every")
        if every:
            sweep = enumerate_trace_crash_points(
                trace, engine=engine, every=int(every), seed=seed,
                progress=progress,
            )
            failures.extend(
                failure
                for outcome in sweep.failures
                for failure in outcome.failures
            )
        return failures
    if mode != "differential":
        return [f"{path}: unknown trace mode {mode!r}"]
    configs = default_fuzz_configs(
        engines=trace.meta.get("engines") or None,
        shards=int(trace.meta.get("shards", 2)),
        include_faulted=False,
    )
    return [
        divergence.describe()
        for divergence in run_differential(trace, configs, progress=progress)
    ]


def replay_corpus(
    directory: str, progress: Callable[[str], None] | None = None
) -> list[tuple[str, list[str]]]:
    """Replay every ``*.json`` trace under a corpus directory.

    Returns ``(path, failures)`` pairs in sorted path order; an
    unreadable file reports as a failure rather than raising, so one
    corrupt corpus entry cannot hide the rest.
    """
    results: list[tuple[str, list[str]]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        if progress is not None:
            progress(f"corpus: {name}")
        try:
            failures = replay_corpus_file(path, progress=progress)
        except Exception as error:  # noqa: BLE001 — report, don't abort
            failures = [f"replay raised {type(error).__name__}: {error}"]
        results.append((path, failures))
    return results


def format_fuzz_report(report: FuzzReport) -> str:
    """Render a :class:`FuzzReport` as the CLI's summary block."""
    lines = [
        f"fuzz seed {report.seed}: {report.rounds_run} round(s), "
        f"{report.ops_replayed} engine-ops across "
        f"{len(report.configs)} configs "
        f"({', '.join(report.configs)}) in {report.elapsed_seconds:.1f}s"
    ]
    if report.crash_boundaries:
        lines.append(
            f"crash compose: {report.crash_boundaries} boundaries tested, "
            f"{report.crashes_triggered} crashes triggered"
        )
    if report.divergences:
        lines.append(f"DIVERGENCES: {len(report.divergences)}")
        lines.extend(f"  {d.describe()}" for d in report.divergences)
    if report.crash_failures:
        lines.append(f"CRASH FAILURES: {len(report.crash_failures)}")
        lines.extend(f"  {failure}" for failure in report.crash_failures)
    if report.corpus_files:
        lines.append("corpus repros written:")
        lines.extend(f"  {path}" for path in report.corpus_files)
    if report.ok:
        lines.append("all engines agree; all recoveries verified")
    return "\n".join(lines)
