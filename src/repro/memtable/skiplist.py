"""A skip list: the ordered, update-in-place structure backing C0.

The LSM-Tree's in-memory component must support efficient point updates
*and* ordered scans (Section 2.3: "the in-memory tree supports efficient
ordered scans. Therefore, each merge can be performed in a single pass").
A skip list provides expected O(log n) insert/lookup/delete and O(1)
ordered successor steps, and is the structure used by LevelDB's memtable.

Randomness is drawn from a per-instance seeded generator so simulations
are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

_MAX_LEVEL = 24
_P_INVERSE = 2  # promote with probability 1/2


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: bytes | None, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list["_Node | None"] = [None] * level


class SkipList:
    """Sorted mapping from byte-string keys to arbitrary values."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._length = 0
        self._random = random.Random(seed)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._random.randrange(_P_INVERSE) == 0:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        """Per level, the rightmost node with key strictly less than ``key``."""
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            update[level] = node
        return update

    def insert(self, key: bytes, value: Any) -> Any:
        """Insert or overwrite; return the previous value or ``None``."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            old = candidate.value
            candidate.value = value
            return old
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._length += 1
        return None

    def get(self, key: bytes) -> Any:
        """Return the value for ``key``, or ``None`` if absent."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return None

    def remove(self, key: bytes) -> Any:
        """Remove ``key``; return its value, or ``None`` if absent."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is None or candidate.key != key:
            return None
        for i in range(len(candidate.forward)):
            if update[i].forward[i] is candidate:
                update[i].forward[i] = candidate.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._length -= 1
        return candidate.value

    def first(self) -> tuple[bytes, Any] | None:
        """Smallest (key, value) pair, or ``None`` when empty."""
        node = self._head.forward[0]
        if node is None:
            return None
        assert node.key is not None
        return node.key, node.value

    def ceiling(self, key: bytes) -> tuple[bytes, Any] | None:
        """Smallest (key, value) with key >= ``key``, or ``None``."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
        candidate = node.forward[0]
        if candidate is None:
            return None
        assert candidate.key is not None
        return candidate.key, candidate.value

    def __iter__(self) -> Iterator[tuple[bytes, Any]]:
        node = self._head.forward[0]
        while node is not None:
            assert node.key is not None
            yield node.key, node.value
            node = node.forward[0]

    def iter_from(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        """Iterate (key, value) pairs with key >= ``key``, in order."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
        node = node.forward[0]
        while node is not None:
            assert node.key is not None
            yield node.key, node.value
            node = node.forward[0]
