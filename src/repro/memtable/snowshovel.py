"""Snowshoveling: replacement-selection run formation (Section 4.2).

Naive memtable flushing freezes a full C0 into C0' and merges that frozen
snapshot, halving the RAM available for new writes.  Snowshoveling instead
consumes C0 *in place*: the merge repeatedly takes the smallest key at or
after a cursor, so newly arriving keys that sort after the cursor join the
current run.  For random arrivals this doubles run length (each new item
has a 50 % chance of landing after the cursor); for sorted arrivals a
single run can consume the entire input; for reverse-sorted arrivals the
run is exactly one memory-full.  Combined with eliminating the C0/C0'
split, the paper credits snowshoveling with a 4x effective C0 for random
workloads.

Two implementations live here:

* :class:`SnowshovelCursor` — the incremental cursor the C0:C1 merge uses
  against the live memtable.
* :func:`replacement_selection_runs` — the classic offline tournament-sort
  formulation over a bounded heap, used by the ablation benchmark to
  measure run lengths under sorted / random / reverse arrival orders.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.memtable.memtable import MemTable
from repro.records import Record


class SnowshovelCursor:
    """Drains a live memtable in key order, one run at a time.

    ``next_record`` removes and returns the smallest record at or after the
    cursor.  When no such record exists the current run is exhausted
    (``None`` is returned); calling ``start_new_run`` wraps the cursor so
    draining can continue with the keys that arrived behind it.
    """

    def __init__(self, memtable: MemTable) -> None:
        self._memtable = memtable
        self._cursor: bytes | None = None  # None means "start of keyspace"
        self.records_emitted = 0
        self.runs_completed = 0

    @property
    def cursor(self) -> bytes | None:
        """Last key emitted in the current run, or ``None`` at run start."""
        return self._cursor

    def next_record(self) -> Record | None:
        """Pop the next record of the current run, or ``None`` if exhausted."""
        if self._cursor is None:
            key = self._memtable.first_key()
        else:
            key = self._memtable.ceiling_key(self._cursor)
        if key is None:
            return None
        record = self._memtable.remove(key)
        assert record is not None
        self._cursor = key + b"\x00"  # strictly-greater successor key
        self.records_emitted += 1
        return record

    def advance_past(self, key: bytes) -> None:
        """Move the cursor past ``key`` without consuming anything.

        The run cursor tracks the *last value written* by the merge
        (Section 4.2), which may come from the downstream tree rather
        than C0; keys arriving behind it must wait for the next run or
        the merge output would go out of order.
        """
        successor = key + b"\x00"
        if self._cursor is None or successor > self._cursor:
            self._cursor = successor

    def run_exhausted(self) -> bool:
        """True when nothing at or after the cursor remains."""
        if self._cursor is None:
            return self._memtable.is_empty
        return self._memtable.ceiling_key(self._cursor) is None

    def start_new_run(self) -> None:
        """Wrap the cursor to the start of the keyspace (next run)."""
        self._cursor = None
        self.runs_completed += 1


def replacement_selection_runs(
    items: Iterable[bytes], memory_items: int
) -> list[list[bytes]]:
    """Partition ``items`` into sorted runs using a bounded heap.

    The classic tape-era algorithm the paper recounts: fill memory, emit
    the smallest item, refill from the input; items smaller than the last
    emitted key are tagged for the *next* run.

    Args:
        items: arrival-ordered input keys.
        memory_items: how many items fit in memory at once.

    Returns:
        The runs, each internally sorted; ``len(runs)`` and run lengths are
        what the snowshoveling ablation measures.
    """
    if memory_items <= 0:
        raise ValueError(f"memory_items must be positive, got {memory_items}")
    source: Iterator[bytes] = iter(items)
    # Heap entries are (run_index, key) so next-run items sink below
    # current-run items without a separate buffer.
    heap: list[tuple[int, bytes]] = []
    for key in source:
        heap.append((0, key))
        if len(heap) == memory_items:
            break
    heapq.heapify(heap)
    runs: list[list[bytes]] = []
    current_run = 0
    run: list[bytes] = []
    while heap:
        run_index, key = heapq.heappop(heap)
        if run_index != current_run:
            runs.append(run)
            run = []
            current_run = run_index
        run.append(key)
        replacement = next(source, None)
        if replacement is not None:
            next_run = current_run if replacement >= key else current_run + 1
            heapq.heappush(heap, (next_run, replacement))
    if run:
        runs.append(run)
    return runs


def run_length_multiplier(
    arrivals: Sequence[bytes], memory_items: int
) -> float:
    """Average run length as a multiple of memory size.

    Section 4.2 predicts approximately 2.0 for random arrivals, 1.0 for
    reverse-sorted arrivals, and ``len(arrivals) / memory_items`` for
    sorted arrivals.
    """
    runs = replacement_selection_runs(arrivals, memory_items)
    if not runs:
        return 0.0
    average = sum(len(r) for r in runs) / len(runs)
    return average / memory_items
