"""In-memory tree component C0 and snowshoveling (Sections 2.3, 4.2)."""

from repro.memtable.backends import (
    MEMTABLE_NAMES,
    ArrayTable,
    DictTable,
    make_backend,
)
from repro.memtable.memtable import MemTable
from repro.memtable.skiplist import SkipList
from repro.memtable.snowshovel import SnowshovelCursor, replacement_selection_runs

__all__ = [
    "ArrayTable",
    "DictTable",
    "MEMTABLE_NAMES",
    "MemTable",
    "SkipList",
    "SnowshovelCursor",
    "make_backend",
    "replacement_selection_runs",
]
