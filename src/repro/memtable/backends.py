"""Swappable ordered-map backends for the C0 memtable.

*The Skiplist-Based LSM Tree* (Szanto) measures how the choice of
in-memory structure moves ingestion cost: a skip list pays O(log n)
pointer chasing per insert but drains in order for free; a sorted array
pays an O(n) memmove per insert (at C speed) but reads and scans with a
single ``bisect``; a hash map inserts in O(1) and defers *all* ordering
work to the freeze/drain that turns C0 into a sorted run.  This module
makes that ablation runnable: every backend implements the same small
ordered-map surface, :class:`~repro.memtable.memtable.MemTable` wraps
whichever one :class:`~repro.core.options.BLSMOptions.memtable` names,
and ``repro profile --memtable all`` sweeps them.

The surface (duck-typed; :class:`~repro.memtable.skiplist.SkipList` is
the reference implementation):

* ``insert(key, value) -> old`` — insert or overwrite, returning the
  previous value (or ``None``);
* ``get(key) -> value | None``; ``remove(key) -> value | None``;
* ``first()`` / ``ceiling(key)`` — ``(key, value)`` pairs or ``None``;
* ``__iter__`` / ``iter_from(key)`` — ordered ``(key, value)`` pairs.

Iteration must tolerate concurrent mutation the way the skip list does
(a consumer may ``put``/``remove`` between yields — snowshoveling does
exactly that), so the array and dict backends resume by *key*, not by
index.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator

from repro.memtable.skiplist import SkipList

__all__ = [
    "ArrayTable",
    "DictTable",
    "MEMTABLE_NAMES",
    "make_backend",
]


class ArrayTable:
    """Sorted parallel arrays: ``bisect`` reads, ``insort`` writes.

    Inserting a new key costs an O(n) list shift — but the shift is one
    C-level ``memmove``, which for C0-sized populations (thousands of
    keys) competes with the skip list's O(log n) *Python-level* pointer
    walk.  Point reads and ordered scans are pure ``bisect``/slice work.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, seed: int = 0) -> None:
        # ``seed`` is accepted for interface parity; a sorted array has
        # no randomized structure to seed.
        self._keys: list[bytes] = []
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def insert(self, key: bytes, value: Any) -> Any:
        keys = self._keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            old = self._values[index]
            self._values[index] = value
            return old
        keys.insert(index, key)
        self._values.insert(index, value)
        return None

    def get(self, key: bytes) -> Any:
        keys = self._keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return self._values[index]
        return None

    def remove(self, key: bytes) -> Any:
        keys = self._keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            del keys[index]
            return self._values.pop(index)
        return None

    def first(self) -> tuple[bytes, Any] | None:
        if not self._keys:
            return None
        return self._keys[0], self._values[0]

    def ceiling(self, key: bytes) -> tuple[bytes, Any] | None:
        index = bisect_left(self._keys, key)
        if index >= len(self._keys):
            return None
        return self._keys[index], self._values[index]

    def __iter__(self) -> Iterator[tuple[bytes, Any]]:
        return self.iter_from(b"")

    def iter_from(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        # Resume by key, not index: the consumer may mutate the table
        # between yields (snowshoveling does), shifting every index.
        last: bytes | None = None
        while True:
            keys = self._keys
            index = (
                bisect_left(keys, key)
                if last is None
                else bisect_right(keys, last)
            )
            if index >= len(keys):
                return
            last = keys[index]
            yield last, self._values[index]


class DictTable:
    """Hash map with ordering deferred until someone needs it.

    Inserts are O(1) dict stores; the sorted key list is built lazily on
    the first ordered access after a *new* key arrived (the
    sorted-on-freeze strategy: a pure ingest phase pays zero ordering
    cost, then the freeze/drain pays one O(n log n) sort).  Overwrites
    and removals keep the existing sorted view valid, so a drain loop
    (``ceiling``/``remove``) sorts once, not per pop.
    """

    __slots__ = ("_map", "_sorted", "_dirty")

    def __init__(self, seed: int = 0) -> None:
        self._map: dict[bytes, Any] = {}
        self._sorted: list[bytes] = []
        self._dirty = False  # a new key arrived since the last sort

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: bytes) -> bool:
        return key in self._map

    def _ensure_sorted(self) -> list[bytes]:
        if self._dirty:
            self._sorted = sorted(self._map)
            self._dirty = False
        return self._sorted

    def insert(self, key: bytes, value: Any) -> Any:
        old = self._map.get(key)
        self._map[key] = value
        if old is None:
            self._dirty = True
        return old

    def get(self, key: bytes) -> Any:
        return self._map.get(key)

    def remove(self, key: bytes) -> Any:
        old = self._map.pop(key, None)
        if old is not None and not self._dirty:
            index = bisect_left(self._sorted, key)
            if index < len(self._sorted) and self._sorted[index] == key:
                del self._sorted[index]
        return old

    def first(self) -> tuple[bytes, Any] | None:
        if not self._map:
            return None
        key = self._ensure_sorted()[0]
        return key, self._map[key]

    def ceiling(self, key: bytes) -> tuple[bytes, Any] | None:
        ordered = self._ensure_sorted()
        index = bisect_left(ordered, key)
        if index >= len(ordered):
            return None
        found = ordered[index]
        return found, self._map[found]

    def __iter__(self) -> Iterator[tuple[bytes, Any]]:
        return self.iter_from(b"")

    def iter_from(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        # Key-resumed like ArrayTable: re-sorts if the consumer inserted
        # new keys mid-iteration, never yields out of order.
        last: bytes | None = None
        while True:
            ordered = self._ensure_sorted()
            index = (
                bisect_left(ordered, key)
                if last is None
                else bisect_right(ordered, last)
            )
            if index >= len(ordered):
                return
            last = ordered[index]
            yield last, self._map[last]


#: Registered memtable backends, in presentation order.  "skiplist" is
#: the paper-faithful default (LevelDB's memtable structure).
_BACKENDS: dict[str, Callable[[int], Any]] = {
    "skiplist": lambda seed: SkipList(seed=seed),
    "array": lambda seed: ArrayTable(seed=seed),
    "dict": lambda seed: DictTable(seed=seed),
}

MEMTABLE_NAMES: tuple[str, ...] = tuple(_BACKENDS)


def make_backend(kind: str, seed: int = 0) -> Any:
    """Build the ordered-map backend ``kind`` names."""
    try:
        factory = _BACKENDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown memtable {kind!r}; expected one of {MEMTABLE_NAMES}"
        ) from None
    return factory(seed)
