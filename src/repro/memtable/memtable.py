"""The in-memory tree component C0.

C0 is a small update-in-place tree that absorbs application writes
(Section 2.3.1).  It keeps at most one record per key: a newer write
supersedes, and a delta written over a resident version folds immediately
(C0 is update-in-place, unlike the append-only on-disk components), so
reads of hot keys stay cheap.

The ordered structure underneath is swappable
(:mod:`repro.memtable.backends`): the paper-faithful default is a skip
list, with sorted-array and hash-map alternatives for the Szanto-style
data-structure ablation (``repro profile --memtable all``).

The memtable tracks its approximate byte footprint; the merge scheduler
uses the fill fraction of C0 as its primary progress signal
(Section 4.3).
"""

from __future__ import annotations

from typing import Iterator

from repro.memtable.backends import make_backend
from repro.records import Record, RecordKind, fold


class MemTable:
    """Bounded-memory ordered map of key -> newest :class:`Record`."""

    def __init__(
        self, capacity_bytes: int, seed: int = 0, kind: str = "skiplist"
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.kind = kind
        self._tree = make_backend(kind, seed=seed)
        self._nbytes = 0

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def nbytes(self) -> int:
        """Approximate bytes of record payload currently held."""
        return self._nbytes

    @property
    def fill_fraction(self) -> float:
        """How full C0 is; the spring-and-gear scheduler's input signal."""
        return self._nbytes / self.capacity_bytes

    @property
    def is_empty(self) -> bool:
        return len(self._tree) == 0

    def put(self, record: Record) -> None:
        """Insert a record, folding onto any resident version of the key.

        The common case — a base record or tombstone over an older (or
        absent) version — folds to the new record unchanged, so it takes
        a single tree traversal: insert, and account using the displaced
        value.  Only deltas (whose fold *combines* the two versions) and
        replayed duplicates (older seqno resident wins) pay a second
        traversal to restore the correct fold result.
        """
        tree = self._tree
        if record.kind is not RecordKind.DELTA:
            existing = tree.insert(record.key, record)
            if existing is None:
                self._nbytes += record.nbytes
            elif record.seqno > existing.seqno:
                self._nbytes += record.nbytes - existing.nbytes
            else:
                # Crash-replay duplicate: fold() keeps the older record.
                tree.insert(record.key, existing)
            return
        existing = tree.get(record.key)
        if existing is not None:
            merged = fold(record, existing)
            tree.insert(record.key, merged)
            self._nbytes += merged.nbytes - existing.nbytes
        else:
            tree.insert(record.key, record)
            self._nbytes += record.nbytes

    def get(self, key: bytes) -> Record | None:
        """Return the resident record for ``key``, or ``None``."""
        return self._tree.get(key)

    def remove(self, key: bytes) -> Record | None:
        """Physically remove a key (used as records drain into C1)."""
        record = self._tree.remove(key)
        if record is not None:
            self._nbytes -= record.nbytes
        return record

    def first_key(self) -> bytes | None:
        """Smallest resident key, or ``None`` when empty."""
        pair = self._tree.first()
        return pair[0] if pair else None

    def ceiling_key(self, key: bytes) -> bytes | None:
        """Smallest resident key >= ``key``, or ``None``."""
        pair = self._tree.ceiling(key)
        return pair[0] if pair else None

    def __iter__(self) -> Iterator[Record]:
        for _, record in self._tree:
            yield record

    def iter_from(self, key: bytes) -> Iterator[Record]:
        """Records with key >= ``key``, in key order."""
        for _, record in self._tree.iter_from(key):
            yield record

    def scan(self, lo: bytes, hi: bytes | None) -> Iterator[Record]:
        """Records with lo <= key < hi (hi=None means unbounded)."""
        for key, record in self._tree.iter_from(lo):
            if hi is not None and key >= hi:
                break
            yield record
