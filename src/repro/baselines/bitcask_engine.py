"""Unordered log-structured store: the third class in Section 2's taxonomy.

"Unordered log structured indexes write data to disk immediately,
eliminating the need for a separate log.  The cost of compacting these
stores is a function of the amount of free space reserved on the
underlying device... Unordered stores typically have higher sustained
write throughput than ordered stores (order of magnitude differences
are not uncommon).  These benefits come at a price: unordered stores do
not provide efficient scan operations" (Section 2).

This engine is BitCask-shaped [33]: every write appends the record to a
data log and updates an in-RAM hash index of ``key -> (offset, size)``.

* writes — one sequential append, zero seeks, no separate WAL (the data
  log *is* the log);
* point reads — one seek straight to the record (the index is RAM);
* ``insert_if_not_exists`` — free: the RAM index answers it;
* compaction — when the dead fraction of the log exceeds a threshold,
  live records are rewritten sequentially to a fresh extent; cost is a
  function of the reserved free-space factor, independent of cache;
* scans — the advertised weakness: served by sorting the RAM index and
  chasing each record with a random read — one seek *per row*.

The paper rules these stores out for PNUTS/Walnut because scans matter;
this baseline exists to measure exactly that trade.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.baselines.interface import KVEngine, build_io_summary
from repro.errors import EngineClosedError
from repro.obs.runtime import EngineRuntime
from repro.records import RECORD_HEADER_BYTES, apply_delta
from repro.sim.clock import VirtualClock
from repro.sim.disk import DiskModel, SimDisk


class BitCaskEngine(KVEngine):
    """Append-only unordered store with an in-RAM hash index."""

    name = "BitCask"

    def __init__(
        self,
        disk_model: DiskModel | None = None,
        garbage_threshold: float = 0.5,
    ) -> None:
        """``garbage_threshold``: dead fraction of the log that triggers
        compaction — the "free space reserved on the device" knob the
        paper says unordered-store compaction cost depends on."""
        if not 0.0 < garbage_threshold < 1.0:
            raise ValueError(
                f"garbage_threshold must be in (0, 1), got {garbage_threshold}"
            )
        model = disk_model if disk_model is not None else DiskModel.hdd()
        self._runtime = EngineRuntime()
        self._clock = self._runtime.clock
        self.disk = SimDisk(
            model, self._clock, name=f"{model.name}-log", runtime=self._runtime
        )
        self.garbage_threshold = garbage_threshold
        self._index: dict[bytes, tuple[int, int]] = {}  # key -> (off, len)
        self._values: dict[int, bytes] = {}  # offset -> payload
        self._tail = 0
        self._live_bytes = 0
        self._closed = False
        self.compactions = 0

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._append(key, value)
        self._maybe_compact()

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        location = self._index.get(key)
        if location is None:
            return None
        offset, nbytes = location
        self.disk.read(offset, nbytes)  # one seek, straight to the record
        return self._values[offset]

    def delete(self, key: bytes) -> None:
        self._check_open()
        location = self._index.pop(key, None)
        if location is None:
            return
        self._live_bytes -= location[1]
        # The deletion itself is a tiny sequential marker in the log.
        self.disk.write(self._tail, RECORD_HEADER_BYTES + len(key))
        self._tail += RECORD_HEADER_BYTES + len(key)
        self._maybe_compact()

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """No blind deltas in a hash store: read, fold, append."""
        self._check_open()
        base = self.get(key) or b""
        self.put(key, apply_delta(base, delta))

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Free existence check: the whole index is in RAM."""
        self._check_open()
        if key in self._index:
            return False
        self.put(key, value)
        return True

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """The advertised weakness: one random read per row.

        The RAM index is sorted on demand (CPU, uncharged) but the
        records themselves lie wherever the log put them, so every row
        is a seek — "unordered stores do not provide efficient scan
        operations" (Section 2).
        """
        self._check_open()
        emitted = 0
        for key in sorted(self._index):
            if key < lo:
                continue
            if hi is not None and key >= hi:
                return
            offset, nbytes = self._index[key]
            self.disk.read(offset, nbytes)
            yield key, self._values[offset]
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def flush(self) -> None:
        """Writes are synchronous appends; nothing is buffered."""

    def close(self) -> None:
        self._closed = True

    def io_summary(self) -> dict[str, Any]:
        stats = self.disk.stats
        elapsed = max(self._clock.now, self.disk.busy_until)
        utilization = stats.busy_seconds / elapsed if elapsed > 0 else 0.0
        return build_io_summary(
            data_seeks=stats.seeks,
            data_bytes_read=stats.bytes_read,
            data_bytes_written=stats.bytes_written,
            log_bytes_written=0,  # the data log IS the log
            busy_seconds=stats.busy_seconds,
            fg_wait_seconds=stats.queue_wait_seconds,
            data_utilization=utilization,
            log_utilization=utilization,  # same device plays both roles
            compactions=self.compactions,
            garbage_fraction=self.garbage_fraction,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def garbage_fraction(self) -> float:
        """Dead fraction of the log written so far."""
        if self._tail == 0:
            return 0.0
        return 1.0 - self._live_bytes / self._tail

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    def _record_bytes(self, key: bytes, value: bytes) -> int:
        return RECORD_HEADER_BYTES + len(key) + len(value)

    def _append(self, key: bytes, value: bytes) -> None:
        nbytes = self._record_bytes(key, value)
        offset = self._tail
        self.disk.write(offset, nbytes)  # sequential: zero seeks
        self._values[offset] = value
        old = self._index.get(key)
        if old is not None:
            self._live_bytes -= old[1]
            self._values.pop(old[0], None)
        self._index[key] = (offset, nbytes)
        self._live_bytes += nbytes
        self._tail += nbytes

    def _maybe_compact(self) -> None:
        if self._tail == 0 or self.garbage_fraction < self.garbage_threshold:
            return
        self._compact()

    def _compact(self) -> None:
        """Rewrite live records sequentially into a fresh segment.

        One pass of (near-sequential) reads over the live set, one
        sequential write of the survivors; the paper notes this cost
        depends only on the free-space factor, not on cache size.  The
        old segment is reclaimed, so offsets rebase to the new one.
        """
        self.compactions += 1
        live_in_log_order = sorted(
            (offset, key) for key, (offset, _n) in self._index.items()
        )
        total_live = 0
        for offset, key in live_in_log_order:
            self.disk.read(offset, self._index[key][1])
            total_live += self._index[key][1]
        self.disk.write(self._tail, total_live)
        rebased_values: dict[int, bytes] = {}
        rebased_index: dict[bytes, tuple[int, int]] = {}
        cursor = 0
        for offset, key in live_in_log_order:
            nbytes = self._index[key][1]
            rebased_values[cursor] = self._values[offset]
            rebased_index[key] = (cursor, nbytes)
            cursor += nbytes
        self._values = rebased_values
        self._index = rebased_index
        self._tail = cursor
        self._live_bytes = cursor
