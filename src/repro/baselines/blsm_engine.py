"""Adapter exposing :class:`repro.core.BLSM` through the engine interface."""

from __future__ import annotations

from typing import Any, Iterator

from repro.baselines.interface import KVEngine, WriteBatch
from repro.core.options import BLSMOptions
from repro.core.tree import BLSM
from repro.core.versions import TreeSnapshot
from repro.sim.clock import VirtualClock
from repro.storage.group_commit import CommitTicket
from repro.storage.logical_log import DurabilityMode


class BLSMEngine(KVEngine):
    """bLSM behind the common engine interface."""

    name = "bLSM"

    def __init__(self, options: BLSMOptions | None = None) -> None:
        self.tree = BLSM(options)

    @classmethod
    def from_tree(cls, tree: BLSM) -> "BLSMEngine":
        """Wrap an already-built tree (e.g. one produced by crash
        recovery) without constructing a fresh substrate."""
        engine = cls.__new__(cls)
        engine.tree = tree
        return engine

    @property
    def clock(self) -> VirtualClock:
        return self.tree.stasis.clock

    def get(self, key: bytes) -> bytes | None:
        return self.tree.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)

    def delete(self, key: bytes) -> None:
        self.tree.delete(key)

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        return self.tree.scan(lo, hi, limit)

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        return self.tree.insert_if_not_exists(key, value)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        self.tree.apply_delta(key, delta)

    def apply_batch(
        self, batch: "WriteBatch | Any"
    ) -> None:
        # Under GROUP durability a batch is a commit unit: route it
        # through the group-commit queue so batched drivers (the
        # differential fuzzer's batched configs) exercise the shared
        # force path rather than bypassing it.
        if self.tree.stasis.logical_log.mode is DurabilityMode.GROUP:
            self.tree.write_batch(batch)
        else:
            super().apply_batch(batch)

    def commit_batch(
        self, batch: "WriteBatch", session: int = 0, wait: bool = True
    ) -> CommitTicket:
        return self.tree.write_batch(batch, session=session, wait=wait)

    def snapshot(self) -> TreeSnapshot:
        return self.tree.snapshot()

    def flush(self) -> None:
        self.tree.flush_log()

    def close(self) -> None:
        self.tree.close()

    def io_summary(self) -> dict[str, Any]:
        return self.tree.stasis.io_summary()
