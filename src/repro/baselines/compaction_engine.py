"""Adapter exposing policy compaction trees through the engine interface.

One adapter serves every non-``blsm3`` compaction policy: the policy
name in :attr:`BLSMOptions.compaction_policy` selects the layout, and
:func:`repro.core.compaction.make_tree` builds the matching
:class:`~repro.core.compaction.tree.CompactionTree`.  The registry in
:mod:`repro.engines` registers one engine name per policy so benchmark
sweeps and the differential fuzzer iterate the design space with the
same loop they use for every other engine.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.baselines.interface import KVEngine, WriteBatch
from repro.core.compaction import make_tree
from repro.core.options import BLSMOptions
from repro.core.versions import TreeSnapshot
from repro.sim.clock import VirtualClock
from repro.storage.group_commit import CommitTicket
from repro.storage.logical_log import DurabilityMode


class CompactionEngine(KVEngine):
    """A policy-parameterized compaction tree behind the engine interface."""

    name = "compaction"

    def __init__(self, options: BLSMOptions | None = None) -> None:
        if options is None:
            options = BLSMOptions(compaction_policy="leveled")
        self.tree = make_tree(options)
        self.name = options.compaction_policy

    @property
    def clock(self) -> VirtualClock:
        return self.tree.stasis.clock

    def get(self, key: bytes) -> bytes | None:
        return self.tree.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)

    def delete(self, key: bytes) -> None:
        self.tree.delete(key)

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        return self.tree.scan(lo, hi, limit)

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        return self.tree.insert_if_not_exists(key, value)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        self.tree.apply_delta(key, delta)

    def apply_batch(
        self, batch: "WriteBatch | Any"
    ) -> None:
        # Mirror BLSMEngine: under GROUP durability a batch is a commit
        # unit routed through the group-commit queue.
        if self.tree.stasis.logical_log.mode is DurabilityMode.GROUP:
            self.tree.write_batch(batch)
        else:
            super().apply_batch(batch)

    def commit_batch(
        self, batch: "WriteBatch", session: int = 0, wait: bool = True
    ) -> CommitTicket:
        return self.tree.write_batch(batch, session=session, wait=wait)

    def snapshot(self) -> TreeSnapshot:
        return self.tree.snapshot()

    def flush(self) -> None:
        self.tree.flush_log()

    def close(self) -> None:
        self.tree.close()

    def io_summary(self) -> dict[str, Any]:
        summary = self.tree.stasis.io_summary()
        view = self.tree.level_view()
        summary["level_runs"] = [len(level) for level in view["levels"]]
        return summary

    def level_view(self) -> dict[str, Any]:
        """Layout snapshot (policy, per-level runs and budgets)."""
        return self.tree.level_view()
