"""Leveled LSM engine with a partition scheduler: the LevelDB stand-in.

The paper uses LevelDB to isolate three design decisions it makes the
other way (Section 1): many exponentially sized levels instead of three,
no Bloom filters, and a partition scheduler (file-granularity compaction)
instead of a level scheduler.  This engine makes the same choices as
LevelDB circa 2012:

* a small memtable flushed to overlapping L0 files;
* levels L1..Ln of non-overlapping files, each level ~10x the previous;
* compaction units of one file plus its overlaps in the next level,
  selected round-robin within the most over-budget level ("fair");
* L0-count write throttling: a 1 ms sleep per write at the slowdown
  trigger, and a hard stall (compact until clear) at the stop trigger —
  LevelDB's literal behaviour, and the source of the long pauses in
  Figure 7 (right);
* reads probe every overlapping L0 file plus one file per deeper level:
  O(levels) seeks (Table 1).

Compaction work is time-sliced onto the write path (the background
thread's share of a saturated device), but a compaction *unit* under
uniform inserts spans much of a level, so keeping up is impossible and
the stop trigger fires — the paper's argument that partitioning alone
is inadequate (Section 3.2).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.baselines.interface import KVEngine
from repro.errors import EngineClosedError
from repro.memtable.memtable import MemTable
from repro.records import Record, resolve
from repro.sim.clock import VirtualClock
from repro.sim.disk import DiskModel
from repro.sstable.builder import SSTableBuilder
from repro.sstable.iterator import kway_merge, merge_records
from repro.sstable.reader import SSTable
from repro.storage.logical_log import DurabilityMode
from repro.storage.stasis import Stasis


class _CompactionJob:
    """One partition-scheduler unit: inputs -> files in a target level."""

    def __init__(
        self,
        engine: "LevelDBEngine",
        inputs_newest_first: list[SSTable],
        target_level: int,
        drop_tombstones: bool,
    ) -> None:
        self.engine = engine
        self.inputs = inputs_newest_first
        self.target_level = target_level
        self.drop_tombstones = drop_tombstones
        self.input_bytes = max(1, sum(t.nbytes for t in self.inputs))
        self.bytes_read = 0
        self.outputs: list[SSTable] = []
        self.done = False
        self._groups = kway_merge(
            [table.iter_records() for table in self.inputs]
        )
        self._builder: SSTableBuilder | None = None

    def step(self, budget_bytes: int) -> int:
        """Consume up to ``budget_bytes`` of input; return bytes consumed."""
        if self.done:
            return 0
        consumed = 0
        while consumed < budget_bytes:
            group = next(self._groups, None)
            if group is None:
                self._finish_builder()
                self.done = True
                break
            consumed += sum(record.nbytes for record in group)
            merged = merge_records(group, drop_tombstones=self.drop_tombstones)
            if merged is None:
                continue
            if self._builder is None:
                self._builder = self.engine._new_builder(self.input_bytes)
            self._builder.add(merged)
            if self._builder.nbytes >= self.engine.file_bytes:
                self._finish_builder()
        self.bytes_read += consumed
        return consumed

    def _finish_builder(self) -> None:
        if self._builder is None:
            return
        table = self._builder.finish()
        self._builder = None
        if table is not None:
            self.outputs.append(table)


class LevelDBEngine(KVEngine):
    """Multi-level leveled LSM without Bloom filters."""

    name = "LevelDB"

    def __init__(
        self,
        disk_model: DiskModel | None = None,
        page_size: int = 4096,
        buffer_pool_pages: int = 256,
        memtable_bytes: int = 256 * 1024,
        file_bytes: int = 512 * 1024,
        level_base_bytes: int | None = None,
        level_growth: int = 10,
        l0_compaction_trigger: int = 4,
        l0_slowdown_trigger: int = 8,
        l0_stop_trigger: int = 12,
        slowdown_sleep_seconds: float = 1e-3,
        compaction_share: float = 4.0,
        durability: DurabilityMode = DurabilityMode.ASYNC,
        seed: int = 0,
        memtable: str = "skiplist",
        stasis: Stasis | None = None,
    ) -> None:
        if stasis is not None:
            self.stasis = stasis
        else:
            self.stasis = Stasis(
                disk_model=disk_model,
                page_size=page_size,
                buffer_pool_pages=buffer_pool_pages,
                durability=durability,
            )
        self.memtable_bytes = memtable_bytes
        self.file_bytes = file_bytes
        self.level_base_bytes = (
            level_base_bytes if level_base_bytes is not None else 4 * memtable_bytes
        )
        self.level_growth = level_growth
        self.l0_compaction_trigger = l0_compaction_trigger
        self.l0_slowdown_trigger = l0_slowdown_trigger
        self.l0_stop_trigger = l0_stop_trigger
        self.slowdown_sleep_seconds = slowdown_sleep_seconds
        self.compaction_share = compaction_share
        self._seed = seed
        self._memtable_kind = memtable
        self._memtable = MemTable(memtable_bytes, seed=seed, kind=memtable)
        self._l0: list[SSTable] = []  # newest first; ranges overlap
        self._levels: list[list[SSTable]] = []  # L1.. sorted, disjoint
        self._job: _CompactionJob | None = None
        self._round_robin: dict[int, int] = {}
        self._next_seqno = 0
        self._next_tree_id = 1
        self._compaction_epoch = 0
        self._closed = False
        self.stall_seconds = 0.0
        self.slowdown_events = 0
        self.stop_events = 0

    @property
    def clock(self) -> VirtualClock:
        return self.stasis.clock

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._write(Record.base(key, value, self._take_seqno()), "put")

    def delete(self, key: bytes) -> None:
        self._write(Record.tombstone(key, self._take_seqno()), "delete")

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """LevelDB-style blind delta (zero seeks, Table 1)."""
        self._write(Record.delta(key, delta, self._take_seqno()), "delta")

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Without Bloom filters the existence check probes every
        overlapping file: O(levels) seeks — the Section 5.2 weakness."""
        if self.get(key) is not None:
            return False
        self.put(key, value)
        return True

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        versions: list[Record] = []
        if self._collect(self._memtable.get(key), versions):
            return resolve(versions)
        for table in self._l0:
            if self._collect(table.get(key), versions):
                return resolve(versions)
        for level in self._levels:
            table = self._file_covering(level, key)
            if table is not None and self._collect(table.get(key), versions):
                break
        return resolve(versions)

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Merged scan over the memtable, L0 and every level.

        Compaction can retire the files a paused scan is reading, so the
        scan validates a compaction epoch after each row and restarts
        from its cursor when the file set changed.
        """
        self._check_open()
        cursor = lo
        emitted = 0
        while True:
            epoch = self._compaction_epoch
            restart = False
            sources: list[Iterator[Record]] = [self._memtable.scan(cursor, hi)]
            sources.extend(table.scan(cursor, hi) for table in self._l0)
            for level in self._levels:
                sources.append(self._scan_level(level, cursor, hi))
            for group in kway_merge(sources):
                value = resolve(group)
                if value is None:
                    continue
                yield group[0].key, value
                cursor = group[0].key + b"\x00"
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
                if self._compaction_epoch != epoch:
                    restart = True
                    break
            if not restart:
                return

    def flush(self) -> None:
        self.stasis.logical_log.force()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True

    def io_summary(self) -> dict[str, Any]:
        summary = self.stasis.io_summary()
        summary["l0_files"] = len(self._l0)
        summary["levels"] = [len(level) for level in self._levels]
        summary["stall_seconds"] = self.stall_seconds
        return summary

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _manifest(self) -> dict[str, Any]:
        from repro.core.components import describe_component

        return {
            "l0": tuple(describe_component(t) for t in self._l0),
            "levels": tuple(
                tuple(describe_component(t) for t in level)
                for level in self._levels
            ),
            "next_seqno": self._next_seqno,
            "next_tree_id": self._next_tree_id,
        }

    @classmethod
    def recover(cls, stasis: Stasis, **engine_options: Any) -> "LevelDBEngine":
        """Rebuild from the newest manifest plus logical-log replay.

        The manifest restores the file set (L0 and every level); the
        log replays the memtable lost at crash; extents a torn
        compaction allocated but never committed are freed.
        """
        from repro.core.components import (
            component_extents,
            describe_component,
            rebuild_component,
        )
        from repro.core.options import BLSMOptions
        from repro.errors import RecoveryError

        engine = cls(stasis=stasis, **engine_options)
        rebuild_options = BLSMOptions(with_bloom_filters=False)
        try:
            manifest = stasis.recover_manifest()
        except RecoveryError:
            manifest = None
        if manifest is not None:
            engine._l0 = [
                rebuild_component(stasis, desc, rebuild_options)
                for desc in manifest["l0"]
            ]
            engine._levels = [
                [
                    rebuild_component(stasis, desc, rebuild_options)
                    for desc in level
                ]
                for level in manifest["levels"]
            ]
            engine._next_seqno = manifest["next_seqno"]
            engine._next_tree_id = manifest["next_tree_id"]
        live = set()
        for table in engine._l0 + [t for lvl in engine._levels for t in lvl]:
            live.update(component_extents(describe_component(table)))
        for extent in stasis.regions.allocated_extents:
            if extent not in live:
                for page_id in range(extent.start, extent.end):
                    stasis.pagefile.free_page(page_id)
                stasis.regions.free(extent)
        for record in stasis.logical_log.replay():
            if record.op == "delete":
                engine._memtable.put(
                    Record.tombstone(record.key, record.seqno)
                )
            elif record.op == "delta":
                engine._memtable.put(
                    Record.delta(record.key, record.value, record.seqno)
                )
            else:
                engine._memtable.put(
                    Record.base(record.key, record.value, record.seqno)
                )
            engine._next_seqno = max(engine._next_seqno, record.seqno + 1)
        return engine

    def level_bytes(self, level: int) -> int:
        """Total bytes in level ``level`` (1-based; 0 means L0)."""
        if level == 0:
            return sum(table.nbytes for table in self._l0)
        if level - 1 < len(self._levels):
            return sum(table.nbytes for table in self._levels[level - 1])
        return 0

    # ------------------------------------------------------------------
    # Write path and compaction scheduling
    # ------------------------------------------------------------------

    def _write(self, record: Record, op: str) -> None:
        self._check_open()
        value = record.value if op != "delete" else None
        self.stasis.logical_log.log(record.seqno, op, record.key, value)
        self._memtable.put(record)
        # Background compaction's share of the saturated device,
        # time-sliced onto the write path.
        self._compaction_tick(int(self.compaction_share * record.nbytes))
        if self._memtable.nbytes >= self.memtable_bytes:
            self._rotate_memtable()

    def _rotate_memtable(self) -> None:
        if len(self._l0) >= self.l0_stop_trigger:
            # Hard stop: writes cease until L0 drains (unbounded pause).
            self.stop_events += 1
            before = self.clock.now
            while len(self._l0) >= self.l0_compaction_trigger:
                if self._compaction_tick(1 << 30) == 0:
                    break
            self.stall_seconds += self.clock.now - before
        elif len(self._l0) >= self.l0_slowdown_trigger:
            self.slowdown_events += 1
            self.clock.advance(self.slowdown_sleep_seconds)
            self.stall_seconds += self.slowdown_sleep_seconds
        self._flush_memtable()

    def _flush_memtable(self) -> None:
        if self._memtable.is_empty:
            return
        builder = self._new_builder(self._memtable.nbytes)
        for record in self._memtable:
            builder.add(record)
        table = builder.finish()
        if table is not None:
            self._l0.insert(0, table)
        self._memtable = MemTable(
            self.memtable_bytes, seed=self._seed, kind=self._memtable_kind
        )
        # LevelDB rotates its log with the memtable: every logged write
        # is now durable in the L0 file, so the old log retires whole.
        self.stasis.commit_manifest(self._manifest())
        self.stasis.logical_log.truncate(self._next_seqno)

    def _compaction_tick(self, budget_bytes: int) -> int:
        """Advance the active compaction job, picking a new one if idle."""
        if budget_bytes <= 0:
            return 0
        if self._job is None and not self._pick_job():
            return 0
        assert self._job is not None
        worked = self._job.step(budget_bytes)
        if self._job.done:
            self._install_job(self._job)
            self._job = None
        return worked

    def _pick_job(self) -> bool:
        """Partition scheduler: choose the next compaction unit."""
        if len(self._l0) >= self.l0_compaction_trigger:
            self._job = self._build_l0_job()
            return True
        worst_level, worst_ratio = 0, 1.0
        for index in range(len(self._levels)):
            limit = self._level_limit(index + 1)
            ratio = self.level_bytes(index + 1) / limit
            if ratio > worst_ratio:
                worst_level, worst_ratio = index + 1, ratio
        if worst_level == 0:
            return False
        self._job = self._build_level_job(worst_level)
        return True

    def _build_l0_job(self) -> _CompactionJob:
        """All L0 files plus every overlapping L1 file -> new L1 files.

        Under uniform inserts each L0 file spans the whole keyspace, so
        this unit rewrites essentially all of L1 — the reason L0 backs
        up no matter how "fair" the scheduler is (Section 3.2).
        """
        inputs = list(self._l0)
        lo = min(t.min_key for t in inputs if t.min_key is not None)
        hi = max(t.max_key for t in inputs if t.max_key is not None)
        overlaps = self._overlapping(1, lo, hi)
        # Inputs stay readable in their levels until the job installs.
        return _CompactionJob(
            self, inputs + overlaps, target_level=1,
            drop_tombstones=self._is_bottom(1),
        )

    def _build_level_job(self, level: int) -> _CompactionJob:
        files = self._levels[level - 1]
        index = self._round_robin.get(level, 0) % len(files)
        self._round_robin[level] = index + 1
        chosen = files[index]
        lo, hi = chosen.min_key, chosen.max_key
        assert lo is not None and hi is not None
        overlaps = self._overlapping(level + 1, lo, hi)
        return _CompactionJob(
            self, [chosen] + overlaps, target_level=level + 1,
            drop_tombstones=self._is_bottom(level + 1),
        )

    def _install_job(self, job: _CompactionJob) -> None:
        """Atomically swap a finished job's inputs for its outputs."""
        self._compaction_epoch += 1  # paused scans must restart
        input_ids = {id(table) for table in job.inputs}
        self._l0 = [t for t in self._l0 if id(t) not in input_ids]
        for index in range(len(self._levels)):
            self._levels[index] = [
                t for t in self._levels[index] if id(t) not in input_ids
            ]
        self._ensure_level(job.target_level)
        target = self._levels[job.target_level - 1]
        target.extend(job.outputs)
        target.sort(key=lambda t: t.min_key or b"")
        self.stasis.commit_manifest(self._manifest())
        for table in job.inputs:
            table.free()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    def _take_seqno(self) -> int:
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _take_tree_id(self) -> int:
        tree_id = self._next_tree_id
        self._next_tree_id += 1
        return tree_id

    def _new_builder(self, expected_bytes: int) -> SSTableBuilder:
        return SSTableBuilder(
            self.stasis,
            tree_id=self._take_tree_id(),
            expected_bytes=min(expected_bytes, 2 * self.file_bytes),
            with_bloom=False,  # stock 2012 LevelDB has no Bloom filters
        )

    @staticmethod
    def _collect(record: Record | None, versions: list[Record]) -> bool:
        if record is None:
            return False
        versions.append(record)
        return not record.is_delta

    @staticmethod
    def _file_covering(level: list[SSTable], key: bytes) -> SSTable | None:
        for table in level:
            if table.min_key is None or table.max_key is None:
                continue
            if table.min_key <= key <= table.max_key:
                return table
        return None

    @staticmethod
    def _scan_level(
        level: list[SSTable], lo: bytes, hi: bytes | None
    ) -> Iterator[Record]:
        for table in level:
            if table.max_key is not None and table.max_key < lo:
                continue
            if hi is not None and table.min_key is not None and table.min_key >= hi:
                break
            yield from table.scan(lo, hi)

    def _overlapping(self, level: int, lo: bytes, hi: bytes) -> list[SSTable]:
        if level - 1 >= len(self._levels):
            return []
        found = []
        for table in self._levels[level - 1]:
            if table.min_key is None or table.max_key is None:
                continue
            if table.max_key >= lo and table.min_key <= hi:
                found.append(table)
        return found

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) < level:
            self._levels.append([])

    def _level_limit(self, level: int) -> int:
        return self.level_base_bytes * (self.level_growth ** (level - 1))

    def _is_bottom(self, target_level: int) -> bool:
        for deeper in range(target_level, len(self._levels)):
            if self._levels[deeper]:
                return False
        return True
