"""Update-in-place B-Tree engine: the InnoDB stand-in (Section 2.2).

Inner nodes live in RAM (the paper's analysis assumes keys fit in memory
and counts only leaf-page I/O); leaves are disk pages managed by the
buffer pool.  The cost structure is the one the paper reasons about:

* point lookup — one seek when the leaf is uncached;
* update — read the leaf (one seek), dirty it in the pool, and pay a
  second, random write when the page is evicted or flushed: two seeks;
* ``insert_if_not_exists`` — must read the leaf even for absent keys,
  which is why bulk loads that check for duplicates collapse (§5.2);
* scans — one seek per *physically discontiguous* leaf.  Splits place
  new leaves wherever the allocator has space, so a randomly updated
  tree fragments and long scans degrade (§5.6).

InnoDB uses 16 KB pages (§5.3); that is the default here.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.baselines.interface import KVEngine
from repro.errors import EngineClosedError, RecoveryError
from repro.records import Record, apply_delta
from repro.sim.clock import VirtualClock
from repro.sim.disk import DiskModel
from repro.storage.buffer import EvictionPolicy
from repro.storage.logical_log import DurabilityMode
from repro.storage.stasis import Stasis


class BTreeEngine(KVEngine):
    """A disk-resident update-in-place B+-Tree over the buffer pool."""

    name = "InnoDB"

    def __init__(
        self,
        disk_model: DiskModel | None = None,
        page_size: int = 16 * 1024,
        buffer_pool_pages: int = 256,
        eviction_policy: EvictionPolicy = EvictionPolicy.CLOCK,
        durability: DurabilityMode = DurabilityMode.ASYNC,
        prefetch_leaves: int = 0,
        stasis: Stasis | None = None,
    ) -> None:
        """``prefetch_leaves``: on a leaf miss, also fault in this many
        physically following pages — InnoDB-style read-ahead.  It helps
        sequential scans of an unfragmented tree and is counterproductive
        for random point reads (wasted bandwidth, polluted cache), one
        of the "hard coded optimizations" the paper blames for InnoDB's
        read-throughput gap (Section 5.3)."""
        if stasis is not None:
            self.stasis = stasis
        else:
            self.stasis = Stasis(
                disk_model=disk_model,
                page_size=page_size,
                buffer_pool_pages=buffer_pool_pages,
                eviction_policy=eviction_policy,
                durability=durability,
            )
        self.prefetch_leaves = prefetch_leaves
        # The in-RAM inner level: sorted (first_key, page_id) per leaf.
        self._leaf_keys: list[bytes] = []
        self._leaf_ids: list[int] = []
        self._next_seqno = 0
        self._closed = False

    @property
    def clock(self) -> VirtualClock:
        return self.stasis.clock

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_ids)

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        index = self._leaf_index(key)
        if index is None:
            return None
        records = self._read_leaf(index)
        position = bisect.bisect_left(records, key, key=lambda r: r.key)
        if position < len(records) and records[position].key == key:
            return records[position].value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._log("put", key, value)
        self._upsert(Record.base(key, value, self._take_seqno()))

    def delete(self, key: bytes) -> None:
        self._check_open()
        index = self._leaf_index(key)
        if index is None:
            return
        self._log("delete", key, None)
        records = list(self._read_leaf(index))
        position = bisect.bisect_left(records, key, key=lambda r: r.key)
        if position < len(records) and records[position].key == key:
            del records[position]
            self._write_leaf(index, tuple(records))

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """B-Trees have no blind-write primitive: a delta is a full
        read-modify-write of the leaf (Table 1: two seeks)."""
        self._check_open()
        current = self.get(key)
        base = current if current is not None else b""
        self.put(key, apply_delta(base, delta))

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        self._check_open()
        if self.get(key) is not None:
            return False
        self.put(key, value)
        return True

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Key-cursor leaf walk.

        The cursor (not a leaf index) drives the walk, so leaf splits
        performed by writes interleaved with a paused scan cannot skip
        or duplicate records — the next leaf is re-resolved from the
        cursor every step.
        """
        self._check_open()
        cursor = lo
        emitted = 0
        while self._leaf_ids:
            index = self._leaf_index(cursor)
            assert index is not None
            for record in self._read_leaf(index):
                if record.key < cursor:
                    continue
                if hi is not None and record.key >= hi:
                    return
                yield record.key, record.value
                emitted += 1
                cursor = record.key + b"\x00"
                if limit is not None and emitted >= limit:
                    return
            # Step past this leaf: re-resolve from the next leaf's low key.
            next_index = self._leaf_index(cursor)
            if next_index is None:
                return
            if next_index == index:
                if index + 1 >= len(self._leaf_keys):
                    return
                cursor = max(cursor, self._leaf_keys[index + 1])

    def bulk_load(self, items: Iterator[tuple[bytes, bytes]]) -> int:
        """Load pre-sorted data at sequential speed (Section 5.2:
        InnoDB requires sorted input for reasonable load throughput).

        Returns the number of records loaded.  The tree must be empty.
        """
        self._check_open()
        if self._leaf_ids:
            raise ValueError("bulk_load requires an empty tree")
        page_size = self.stasis.page_size
        leaf: list[Record] = []
        leaf_bytes = 0
        loaded = 0
        last_key: bytes | None = None
        for key, value in items:
            if last_key is not None and key <= last_key:
                raise ValueError("bulk_load input must be sorted and unique")
            last_key = key
            record = Record.base(key, value, self._take_seqno())
            self._log("put", key, value)
            if leaf and leaf_bytes + record.nbytes > page_size:
                self._append_leaf(tuple(leaf))
                leaf, leaf_bytes = [], 0
            leaf.append(record)
            leaf_bytes += record.nbytes
            loaded += 1
        if leaf:
            self._append_leaf(tuple(leaf))
        return loaded

    def flush(self) -> None:
        self.stasis.logical_log.force()
        self.stasis.buffer.flush_all()

    def checkpoint(self) -> None:
        """Make the whole tree durable and truncate the logical log.

        Classic checkpointing: force every dirty leaf, commit the inner
        level (the leaf directory) as a manifest, then drop the log
        records the flushed pages now cover.
        """
        self.flush()
        self.stasis.commit_manifest(
            {
                "leaf_keys": tuple(self._leaf_keys),
                "leaf_ids": tuple(self._leaf_ids),
                "next_seqno": self._next_seqno,
            }
        )
        self.stasis.logical_log.truncate(self._next_seqno)

    @classmethod
    def recover(
        cls,
        stasis: Stasis,
        prefetch_leaves: int = 0,
    ) -> "BTreeEngine":
        """Rebuild from the last checkpoint plus logical-log replay.

        Pages flushed by the checkpoint are durable; writes after it are
        re-executed from the logical log (they are idempotent: puts and
        deletes of full values).
        """
        engine = cls.__new__(cls)
        engine.stasis = stasis
        engine.prefetch_leaves = prefetch_leaves
        engine._closed = False
        try:
            manifest = stasis.recover_manifest()
        except RecoveryError:
            # Never checkpointed: an empty tree plus full log replay.
            manifest = {"leaf_keys": (), "leaf_ids": (), "next_seqno": 0}
        engine._leaf_keys = list(manifest["leaf_keys"])
        engine._leaf_ids = list(manifest["leaf_ids"])
        engine._next_seqno = manifest["next_seqno"]
        for record in stasis.logical_log.replay():
            if record.seqno < manifest["next_seqno"]:
                continue  # already durable via the checkpoint
            if record.op == "delete":
                engine.delete(record.key)
            else:
                assert record.value is not None
                engine.put(record.key, record.value)
            engine._next_seqno = max(engine._next_seqno, record.seqno + 1)
        return engine

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True

    def io_summary(self) -> dict[str, Any]:
        return self.stasis.io_summary()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    def _take_seqno(self) -> int:
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _log(self, op: str, key: bytes, value: bytes | None) -> None:
        self.stasis.logical_log.log(self._next_seqno, op, key, value)

    def _leaf_index(self, key: bytes) -> int | None:
        """Index of the leaf whose range covers ``key`` (RAM-only)."""
        if not self._leaf_ids:
            return None
        return max(0, bisect.bisect_right(self._leaf_keys, key) - 1)

    def _read_leaf(self, index: int) -> tuple[Record, ...]:
        page_id = self._leaf_ids[index]
        if self.prefetch_leaves and page_id not in self.stasis.buffer:
            self._prefetch_from(page_id)
        return self.stasis.buffer.get(page_id)

    def _prefetch_from(self, page_id: int) -> None:
        """Fault in ``page_id`` plus the physically following pages.

        Read-ahead reads whatever is physically next — on a fragmented
        tree those pages are usually *not* the logically next leaves,
        which is exactly why the paper finds prefetching
        counterproductive for random reads.
        """
        count = 1
        while (
            count <= self.prefetch_leaves
            and (page_id + count) in self.stasis.pagefile
        ):
            count += 1
        payloads = self.stasis.pagefile.read_run(page_id, count)
        for offset, payload in enumerate(payloads):
            self.stasis.buffer.put(page_id + offset, payload, dirty=False)

    def _write_leaf(self, index: int, records: tuple[Record, ...]) -> None:
        self.stasis.buffer.put(self._leaf_ids[index], records, dirty=True)

    def _append_leaf(self, records: tuple[Record, ...]) -> None:
        """Bulk-load path: write a full leaf sequentially, bypass cache."""
        extent = self.stasis.regions.allocate(1)
        self.stasis.pagefile.write_page(extent.start, records)
        self._leaf_keys.append(records[0].key)
        self._leaf_ids.append(extent.start)

    def _upsert(self, record: Record) -> None:
        index = self._leaf_index(record.key)
        if index is None:
            extent = self.stasis.regions.allocate(1)
            self._leaf_keys.append(record.key)
            self._leaf_ids.append(extent.start)
            self.stasis.buffer.put(extent.start, (record,), dirty=True)
            return
        records = list(self._read_leaf(index))
        position = bisect.bisect_left(records, record.key, key=lambda r: r.key)
        if position < len(records) and records[position].key == record.key:
            records[position] = record
        else:
            records.insert(position, record)
        if sum(r.nbytes for r in records) > self.stasis.page_size:
            self._split_leaf(index, records)
        else:
            self._write_leaf(index, tuple(records))

    def _split_leaf(self, index: int, records: list[Record]) -> None:
        """Split an overflowing leaf in half.

        The new right sibling is allocated wherever the allocator has
        space — *not* next to its logical neighbour — which is precisely
        how update-in-place trees fragment (Section 5.6).
        """
        middle = len(records) // 2
        left, right = tuple(records[:middle]), tuple(records[middle:])
        self._write_leaf(index, left)
        extent = self.stasis.regions.allocate(1)
        self._leaf_keys.insert(index + 1, right[0].key)
        self._leaf_ids.insert(index + 1, extent.start)
        self.stasis.buffer.put(extent.start, right, dirty=True)

    def fragmentation(self) -> float:
        """Fraction of logically adjacent leaves not physically adjacent."""
        if len(self._leaf_ids) < 2:
            return 0.0
        breaks = sum(
            1
            for left, right in zip(self._leaf_ids, self._leaf_ids[1:])
            if right != left + 1
        )
        return breaks / (len(self._leaf_ids) - 1)
