"""Comparison systems from the paper's evaluation (Section 5).

* :class:`BTreeEngine` — an update-in-place B-Tree with a buffer pool;
  the InnoDB stand-in.  One seek per uncached read, two per update
  (Section 2.2), fragmentation that degrades long scans (Section 5.6).
* :class:`LevelDBEngine` — a multi-level leveled LSM with a small
  memtable, no Bloom filters, and a partition (file-granularity)
  compaction scheduler; the LevelDB stand-in.  O(levels) seeks per read
  and unbounded write pauses under sustained load (Sections 3.2, 5.2).
* :class:`BLSMEngine` — adapts :class:`repro.core.BLSM` to the common
  engine interface used by the YCSB runner.
"""

from repro.baselines.bitcask_engine import BitCaskEngine
from repro.baselines.blsm_engine import BLSMEngine
from repro.baselines.btree_engine import BTreeEngine
from repro.baselines.compaction_engine import CompactionEngine
from repro.baselines.interface import (
    IO_SUMMARY_KEYS,
    KVEngine,
    WriteBatch,
    build_io_summary,
    validate_io_summary,
)
from repro.baselines.leveldb_engine import LevelDBEngine
from repro.baselines.partitioned_engine import PartitionedBLSMEngine

__all__ = [
    "BitCaskEngine",
    "BLSMEngine",
    "BTreeEngine",
    "CompactionEngine",
    "IO_SUMMARY_KEYS",
    "KVEngine",
    "LevelDBEngine",
    "PartitionedBLSMEngine",
    "WriteBatch",
    "build_io_summary",
    "validate_io_summary",
]
