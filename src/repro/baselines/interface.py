"""The engine interface shared by bLSM and both baselines.

The YCSB runner and every benchmark drive engines exclusively through
this interface, so each experiment isolates algorithmic differences
rather than harness differences — mirroring how the paper runs all three
systems under the same YCSB workloads (Section 5.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator

from repro.obs.runtime import EngineRuntime
from repro.obs.trace import TraceEvent
from repro.sim.clock import VirtualClock


class KVEngine(ABC):
    """A key-value storage engine over simulated devices."""

    name: str = "engine"

    @property
    @abstractmethod
    def clock(self) -> VirtualClock:
        """The virtual clock all of this engine's I/O advances."""

    @property
    def runtime(self) -> EngineRuntime | None:
        """The engine's observability runtime (clock + metrics + trace).

        The default resolves the :class:`EngineRuntime` every engine in
        this repository already owns — directly (``self._runtime``),
        through its storage substrate (``self.stasis``), or through a
        wrapped tree (``self.tree.stasis``) — so concrete engines need
        no per-engine plumbing.  An engine built some other way can
        simply set ``self._runtime``.
        """
        runtime = getattr(self, "_runtime", None)
        if runtime is not None:
            return runtime
        stasis = getattr(self, "stasis", None)
        if stasis is None:
            stasis = getattr(getattr(self, "tree", None), "stasis", None)
        return stasis.runtime if stasis is not None else None

    def metrics(self) -> dict[str, Any]:
        """Snapshot of every metric this engine's layers registered.

        All engines report through the same :class:`MetricsRegistry`
        API, so benchmarks compare engines by metric name instead of
        reaching into per-layer counters.
        """
        runtime = self.runtime
        return runtime.metrics.snapshot() if runtime is not None else {}

    def trace(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained trace events (optionally filtered by event type)."""
        runtime = self.runtime
        return runtime.trace.events(etype) if runtime is not None else []

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Point lookup."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Blind write (insert or overwrite)."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove a key."""

    @abstractmethod
    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered range scan starting at ``lo``."""

    @abstractmethod
    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Insert only if absent; return whether the insert happened."""

    def insert_unique(self, key: bytes, value: bytes) -> None:
        """Insert a key that must not exist; raise on a duplicate.

        The exception-raising flavour of ``insert_if_not_exists`` for
        callers enforcing uniqueness constraints (the Section 5.2 bulk
        loads check exactly this).
        """
        from repro.errors import DuplicateKeyError

        if not self.insert_if_not_exists(key, value):
            raise DuplicateKeyError(key)

    @abstractmethod
    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Apply a partial update to a record."""

    def read_modify_write(
        self, key: bytes, update: Callable[[bytes | None], bytes]
    ) -> bytes:
        """Read the value, transform it, write it back."""
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    @abstractmethod
    def flush(self) -> None:
        """Make buffered writes durable (force logs)."""

    @abstractmethod
    def close(self) -> None:
        """Flush and shut the engine down."""

    @abstractmethod
    def io_summary(self) -> dict[str, Any]:
        """Device counters for benchmark reporting."""

    def seeks(self) -> int:
        """Data-device seeks so far (read-amplification audits)."""
        return int(self.io_summary().get("data_seeks", 0))
