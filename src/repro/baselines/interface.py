"""The engine interface shared by bLSM and both baselines.

The YCSB runner and every benchmark drive engines exclusively through
this interface, so each experiment isolates algorithmic differences
rather than harness differences — mirroring how the paper runs all three
systems under the same YCSB workloads (Section 5.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.obs.runtime import EngineRuntime
from repro.obs.trace import TraceEvent
from repro.sim.clock import VirtualClock
from repro.storage.group_commit import CommitTicket

#: Keys every engine's :meth:`KVEngine.io_summary` must provide.  The
#: schema is the paper's benchmark vocabulary: seek counts and byte
#: counters for the data device, bytes appended to the log device, and
#: the busy/utilization attribution PR 3's device timelines introduced.
#: Engines may add engine-specific extras (``partitions``,
#: ``compactions``, ``l0_files`` ...) on top, but never omit these.
IO_SUMMARY_KEYS = frozenset(
    {
        "data_seeks",
        "data_bytes_read",
        "data_bytes_written",
        "log_bytes_written",
        "busy_seconds",
        "fg_busy_seconds",
        "bg_busy_seconds",
        "fg_wait_seconds",
        "data_utilization",
        "log_utilization",
    }
)


def build_io_summary(
    *,
    data_seeks: int,
    data_bytes_read: int,
    data_bytes_written: int,
    log_bytes_written: int,
    busy_seconds: float,
    fg_busy_seconds: float | None = None,
    bg_busy_seconds: float = 0.0,
    fg_wait_seconds: float = 0.0,
    data_utilization: float = 0.0,
    log_utilization: float = 0.0,
    **extra: Any,
) -> dict[str, Any]:
    """Assemble an :meth:`KVEngine.io_summary` dict in the shared schema.

    Engines that do not run on the Stasis substrate (and therefore
    cannot delegate to ``Stasis.io_summary``) build their dict through
    this helper instead of hand-rolling keys, so every engine reports
    the same vocabulary.  ``fg_busy_seconds`` defaults to all busy time
    not attributed to background work.
    """
    if fg_busy_seconds is None:
        fg_busy_seconds = busy_seconds - bg_busy_seconds
    summary: dict[str, Any] = {
        "data_seeks": int(data_seeks),
        "data_bytes_read": int(data_bytes_read),
        "data_bytes_written": int(data_bytes_written),
        "log_bytes_written": int(log_bytes_written),
        "busy_seconds": busy_seconds,
        "fg_busy_seconds": fg_busy_seconds,
        "bg_busy_seconds": bg_busy_seconds,
        "fg_wait_seconds": fg_wait_seconds,
        "data_utilization": data_utilization,
        "log_utilization": log_utilization,
    }
    summary.update(extra)
    return summary


def validate_io_summary(
    summary: dict[str, Any], engine: str = "engine"
) -> dict[str, Any]:
    """Check a summary against :data:`IO_SUMMARY_KEYS`; raise on drift.

    The contract tests run every engine's summary through this, so a
    missing or misspelled key fails loudly instead of silently reading
    as zero in benchmark tables.
    """
    missing = IO_SUMMARY_KEYS - summary.keys()
    if missing:
        raise ValueError(
            f"{engine} io_summary() missing keys: {sorted(missing)}"
        )
    return summary


class WriteBatch:
    """An ordered group of mutations applied through one engine call.

    The batch is the unit the sharded engine fans out: grouping writes
    lets a router overlap per-shard device time so the batch costs the
    *max*, not the sum, of shard service.  On a single-tree engine the
    default :meth:`KVEngine.apply_batch` applies the operations in
    order, so batches are purely an API-shape change there.
    """

    __slots__ = ("_ops",)

    PUT = "put"
    DELETE = "delete"
    DELTA = "delta"

    def __init__(self) -> None:
        self._ops: list[tuple[str, bytes, bytes | None]] = []

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        """Queue a blind write; returns self for chaining."""
        self._ops.append((self.PUT, key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        """Queue a tombstone write; returns self for chaining."""
        self._ops.append((self.DELETE, key, None))
        return self

    def apply_delta(self, key: bytes, delta: bytes) -> "WriteBatch":
        """Queue a partial update; returns self for chaining."""
        self._ops.append((self.DELTA, key, delta))
        return self

    def extend(self, other: "WriteBatch") -> "WriteBatch":
        """Append another batch's operations, preserving order."""
        self._ops.extend(other._ops)
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[tuple[str, bytes, bytes | None]]:
        return iter(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __repr__(self) -> str:
        return f"WriteBatch({len(self._ops)} ops)"


class MaterializedSnapshot:
    """A point-in-time read view materialized from one full scan.

    The fallback behind :meth:`KVEngine.snapshot` for engines without
    immutable versioned components: the constructor receives the
    engine's full ordered contents (charged as the scan that produced
    them), after which reads are free — the data already left the
    engine.  Versioned engines return pinned component sets instead,
    which cost O(1) to take and charge reads normally.
    """

    __slots__ = ("engine", "_rows", "_index", "_closed")

    def __init__(
        self, engine: str, rows: Sequence[tuple[bytes, bytes]]
    ) -> None:
        self.engine = engine
        self._rows = sorted(rows)
        self._index = dict(self._rows)
        self._closed = False

    def get(self, key: bytes) -> bytes | None:
        """Point lookup against the snapshot."""
        return self._index.get(key)

    def multi_get(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Batched point lookups; results align with ``keys``."""
        return [self._index.get(key) for key in keys]

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered range scan over the snapshot contents."""
        emitted = 0
        for key, value in self._rows:
            if key < lo:
                continue
            if hi is not None and key >= hi:
                return
            if limit is not None and emitted >= limit:
                return
            yield key, value
            emitted += 1

    def close(self) -> None:
        """Release the snapshot (idempotent)."""
        self._closed = True

    def __enter__(self) -> "MaterializedSnapshot":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MaterializedSnapshot({self.engine}, {len(self._rows)} rows)"


class KVEngine(ABC):
    """A key-value storage engine over simulated devices."""

    name: str = "engine"

    @property
    @abstractmethod
    def clock(self) -> VirtualClock:
        """The virtual clock all of this engine's I/O advances."""

    @property
    def runtime(self) -> EngineRuntime | None:
        """The engine's observability runtime (clock + metrics + trace).

        The default resolves the :class:`EngineRuntime` every engine in
        this repository already owns — directly (``self._runtime``),
        through its storage substrate (``self.stasis``), or through a
        wrapped tree (``self.tree.stasis``) — so concrete engines need
        no per-engine plumbing.  An engine built some other way can
        simply set ``self._runtime``.
        """
        runtime = getattr(self, "_runtime", None)
        if runtime is not None:
            return runtime
        stasis = getattr(self, "stasis", None)
        if stasis is None:
            stasis = getattr(getattr(self, "tree", None), "stasis", None)
        return stasis.runtime if stasis is not None else None

    def metrics(self) -> dict[str, Any]:
        """Snapshot of every metric this engine's layers registered.

        All engines report through the same :class:`MetricsRegistry`
        API, so benchmarks compare engines by metric name instead of
        reaching into per-layer counters.
        """
        runtime = self.runtime
        return runtime.metrics.snapshot() if runtime is not None else {}

    def trace(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained trace events (optionally filtered by event type)."""
        runtime = self.runtime
        return runtime.trace.events(etype) if runtime is not None else []

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Point lookup."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Blind write (insert or overwrite)."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove a key."""

    @abstractmethod
    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered range scan starting at ``lo``."""

    @abstractmethod
    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Insert only if absent; return whether the insert happened."""

    def insert_unique(self, key: bytes, value: bytes) -> None:
        """Insert a key that must not exist; raise on a duplicate.

        The exception-raising flavour of ``insert_if_not_exists`` for
        callers enforcing uniqueness constraints (the Section 5.2 bulk
        loads check exactly this).
        """
        from repro.errors import DuplicateKeyError

        if not self.insert_if_not_exists(key, value):
            raise DuplicateKeyError(key)

    @abstractmethod
    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Apply a partial update to a record."""

    def multi_get(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Point-look up several keys; results align with ``keys``.

        The default performs the lookups sequentially, so every engine
        supports the batched read surface; engines that can overlap the
        lookups (the sharded router) override this and return in max-
        instead of sum-of-device-time.
        """
        return [self.get(key) for key in keys]

    def apply_batch(self, batch: "WriteBatch | Iterable[tuple[str, bytes, bytes | None]]") -> None:
        """Apply a :class:`WriteBatch`'s mutations in order.

        The default applies sequentially.  Engines with a parallel write
        path (the sharded router) override this to overlap per-shard
        device time.
        """
        for op, key, value in batch:
            if op == WriteBatch.PUT:
                assert value is not None
                self.put(key, value)
            elif op == WriteBatch.DELETE:
                self.delete(key)
            elif op == WriteBatch.DELTA:
                assert value is not None
                self.apply_delta(key, value)
            else:
                raise ValueError(f"unknown batch op {op!r}")

    def commit_batch(
        self, batch: "WriteBatch", session: int = 0, wait: bool = True
    ) -> CommitTicket:
        """Apply a batch and make it durable; return its commit ticket.

        The session-layer write surface: where :meth:`apply_batch` only
        promises the writes are *applied*, ``commit_batch`` promises
        they are *durable* at ``ticket.durable_at``.  Engines with
        leader-based group commit (the bLSM trees under
        ``DurabilityMode.GROUP``) override this so concurrent sessions
        share one log force; with ``wait=False`` they return an
        unresolved ticket the caller collects later.  The default
        applies the batch and flushes — one synchronous force, group
        size 1 — so every engine honours the contract.
        """
        enqueued = self.clock.now
        self.apply_batch(batch)
        self.flush()
        now = self.clock.now
        return CommitTicket(
            session=session,
            first_seqno=0,
            last_seqno=0,
            ops=len(batch),
            enqueued_at=enqueued,
            leader=True,
            group_size=1,
            durable_at=now,
        )

    def snapshot(self) -> "MaterializedSnapshot":
        """A consistent point-in-time read view of the engine.

        The returned object exposes ``get``/``multi_get``/``scan`` and
        is a context manager; later writes to the engine are invisible
        to it.  The default materializes the full ordered contents
        through one scan (O(n), charged as that scan); engines with
        immutable versioned components (the bLSM trees) override this
        with a pinned component set that costs O(C0) to take and reads
        through the normal (charged) read path.
        """
        return MaterializedSnapshot(self.name, list(self.scan(b"")))

    def read_modify_write(
        self, key: bytes, update: Callable[[bytes | None], bytes]
    ) -> bytes:
        """Read the value, transform it, write it back.

        The write-back routes through :meth:`apply_batch` when the
        engine overrides it (so a sharded engine applies the write on
        the owning shard's timeline); engines on the default batch path
        keep the direct :meth:`put`.  Either way an ``rmw`` trace event
        attributes the op (YCSB workload F) in ``repro trace``.
        """
        new_value = update(self.get(key))
        if type(self).apply_batch is not KVEngine.apply_batch:
            self.apply_batch(WriteBatch().put(key, new_value))
        else:
            self.put(key, new_value)
        runtime = self.runtime
        if runtime is not None and runtime.trace.enabled:
            runtime.trace.emit("rmw", key=key, nbytes=len(new_value))
        return new_value

    @abstractmethod
    def flush(self) -> None:
        """Make buffered writes durable (force logs)."""

    @abstractmethod
    def close(self) -> None:
        """Flush and shut the engine down."""

    @abstractmethod
    def io_summary(self) -> dict[str, Any]:
        """Device counters for benchmark reporting.

        Must contain every key in :data:`IO_SUMMARY_KEYS`; build the
        dict with :func:`build_io_summary` (or delegate to
        ``Stasis.io_summary``) rather than hand-rolling keys.
        """

    def state_digest(self) -> str:
        """SHA-256 hex digest of the engine's full ordered contents.

        Drains ``scan(b"")`` and hashes every ``(key, value)`` pair with
        length framing, so two engines hold byte-identical logical state
        exactly when their digests match.  The conformance harness's
        parity sweeps compare engines by this one string instead of
        materializing both scans in the assertion message.
        """
        import hashlib

        digest = hashlib.sha256()
        for key, value in self.scan(b""):
            digest.update(len(key).to_bytes(4, "big"))
            digest.update(key)
            digest.update(len(value).to_bytes(4, "big"))
            digest.update(value)
        return digest.hexdigest()

    def seeks(self) -> int:
        """Data-device seeks so far (read-amplification audits).

        Indexes the summary directly: an engine whose summary drifted
        from the shared schema raises ``KeyError`` here instead of
        silently reporting zero seeks.
        """
        return int(self.io_summary()["data_seeks"])
